"""Incremental vs full model<->DRAM sync parity.

The incremental path reloads only dirty rows; after any randomized
sequence of DRAM-side mutations (pokes, RowHammer flips, defender swap
chains) an incremental sync must leave the model byte-identical to what
a full re-read produces.
"""

import numpy as np
import pytest

from repro.core import SwapEngine
from repro.dram import (
    DramDevice,
    DramGeometry,
    MemoryController,
    TimingParams,
)
from repro.mapping import place_model
from repro.nn.quant import BitLocation

GEOMETRY = DramGeometry(
    banks=2, subarrays_per_bank=4, rows_per_subarray=64, row_bytes=128
)


@pytest.fixture
def controller():
    return MemoryController(DramDevice(GEOMETRY), TimingParams(t_rh=200))


@pytest.fixture
def layout(fresh_quantized, controller):
    return place_model(fresh_quantized, controller, reserved_rows=2, seed=0)


def _random_poke(layout, controller, rng):
    row = layout.weight_rows()[int(rng.integers(0, layout.num_rows))]
    data = controller.peek_logical(row)
    data[int(rng.integers(0, data.size))] ^= np.uint8(1 << rng.integers(0, 8))
    controller.poke_logical(row, data)


def _random_hammer_flip(layout, controller, rng):
    row = layout.weight_rows()[int(rng.integers(0, layout.num_rows))]
    physical = controller.indirection.physical(row)
    bit = int(rng.integers(0, GEOMETRY.row_bytes * 8))
    controller.declare_attack_targets(physical, [bit])
    neighbors = controller.device.mapper.neighbors(physical)
    controller.activate(
        neighbors[-1], actor="attacker",
        count=controller.timing.t_rh + 1, hammer=True,
    )
    controller.clear_attack_targets(physical)


def _random_swap_chain(layout, controller, rng):
    engine = SwapEngine(controller, reserved_rows=2)
    rows = layout.weight_rows()
    picks = rng.choice(len(rows), size=4, replace=False)
    for i in picks:
        engine.swap_target(rows[int(i)], rng, exclude=set(rows))


class TestIncrementalSyncParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_mutation_sequences(
        self, layout, controller, fresh_quantized, seed
    ):
        rng = np.random.default_rng(seed)
        actions = [_random_poke, _random_hammer_flip, _random_swap_chain]
        for step in range(8):
            actions[int(rng.integers(0, len(actions)))](layout, controller,
                                                        rng)
            layout.sync_model_from_dram()  # incremental (default)
            snapshot = fresh_quantized.snapshot()
            layout.sync_model_from_dram(full=True)
            assert fresh_quantized.hamming_distance_from(snapshot) == 0, (
                f"incremental sync diverged from full sync at step {step}"
            )

    def test_incremental_picks_up_hammer_flip(
        self, layout, controller, fresh_quantized
    ):
        location = BitLocation(0, 5, 2)
        row, bit_in_row = layout.locate_bit(location)
        before = fresh_quantized.bit_value(location)
        physical = controller.indirection.physical(row)
        controller.declare_attack_targets(physical, [bit_in_row])
        neighbors = controller.device.mapper.neighbors(physical)
        controller.activate(
            neighbors[0], actor="attacker",
            count=controller.timing.t_rh + 1, hammer=True,
        )
        layout.sync_model_from_dram()
        assert fresh_quantized.bit_value(location) == 1 - before

    def test_noop_sync_touches_nothing(self, layout, fresh_quantized):
        versions = [layer.version for layer in fresh_quantized.layers]
        layout.sync_model_from_dram()
        assert [layer.version for layer in fresh_quantized.layers] == versions

    def test_env_forces_full(self, layout, controller, fresh_quantized,
                             monkeypatch):
        monkeypatch.setenv("REPRO_SYNC_MODE", "full")
        versions = [layer.version for layer in fresh_quantized.layers]
        layout.sync_model_from_dram()  # full reload bumps every layer
        assert all(
            layer.version > v
            for layer, v in zip(fresh_quantized.layers, versions)
        )


class TestLoadPackedSlice:
    def test_slice_updates_ints_and_floats(self, fresh_quantized):
        layer = fresh_quantized.layers[0]
        packed = layer.packed_bytes()
        packed[3] ^= 0xFF
        layer.load_packed_slice(2, packed[2:6])
        np.testing.assert_array_equal(layer.packed_bytes(), packed)
        np.testing.assert_allclose(
            layer.module.weight.data.reshape(-1),
            layer.weight_int.reshape(-1).astype(np.float32) * layer.scale,
        )

    def test_bounds_checked(self, fresh_quantized):
        layer = fresh_quantized.layers[0]
        with pytest.raises(ValueError):
            layer.load_packed_slice(-1, np.zeros(2, np.uint8))
        with pytest.raises(ValueError):
            layer.load_packed_slice(
                layer.num_weights - 1, np.zeros(2, np.uint8)
            )

    def test_empty_slice_is_noop(self, fresh_quantized):
        layer = fresh_quantized.layers[0]
        version = layer.version
        layer.load_packed_slice(0, np.zeros(0, np.uint8))
        assert layer.version == version
