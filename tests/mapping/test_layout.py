"""Tests for weight placement into DRAM and the mapping file."""

import numpy as np
import pytest

from repro.dram import (
    DramDevice,
    DramGeometry,
    MemoryController,
    TimingParams,
)
from repro.mapping import WeightLayout, build_protection_plan, place_model
from repro.nn.quant import BitLocation


GEOMETRY = DramGeometry(
    banks=2, subarrays_per_bank=4, rows_per_subarray=64, row_bytes=128
)


@pytest.fixture
def controller():
    return MemoryController(DramDevice(GEOMETRY), TimingParams(t_rh=200))


@pytest.fixture
def layout(fresh_quantized, controller):
    return place_model(fresh_quantized, controller, reserved_rows=2, seed=0)


class TestPlacement:
    def test_all_weights_placed(self, layout, fresh_quantized):
        total_bytes = sum(slot.length for slot in layout.slots)
        assert total_bytes == fresh_quantized.total_weights

    def test_rows_unique(self, layout):
        rows = layout.weight_rows()
        assert len(rows) == len(set(rows))

    def test_rows_avoid_reserved_region(self, layout):
        data_end = GEOMETRY.rows_per_subarray - layout.reserved_rows
        for row in layout.weight_rows():
            assert 0 < row.row < data_end - 1

    def test_rows_scattered_across_subarrays(self, layout):
        subarrays = {(r.bank, r.subarray) for r in layout.weight_rows()}
        assert len(subarrays) > 1

    def test_dram_content_matches_model(self, layout, fresh_quantized):
        for layer_index, layer in enumerate(fresh_quantized.layers):
            packed = layer.packed_bytes()
            for slot in layout._rows_by_layer[layer_index]:
                row = layout.controller.peek_logical(slot.logical_row)
                np.testing.assert_array_equal(
                    row[:slot.length],
                    packed[slot.byte_offset:slot.byte_offset + slot.length],
                )

    def test_too_small_geometry_rejected(self, fresh_quantized):
        tiny = DramGeometry(
            banks=1, subarrays_per_bank=1, rows_per_subarray=8, row_bytes=32
        )
        controller = MemoryController(DramDevice(tiny), TimingParams())
        with pytest.raises(ValueError):
            place_model(fresh_quantized, controller)

    def test_validates_params(self, fresh_quantized, controller):
        with pytest.raises(ValueError):
            WeightLayout(fresh_quantized, controller, reserved_rows=0)
        with pytest.raises(ValueError):
            WeightLayout(fresh_quantized, controller, spacing=0)


class TestMappingFile:
    def test_locate_bit_roundtrip(self, layout, fresh_quantized):
        rng = np.random.default_rng(0)
        for _ in range(50):
            layer = int(rng.integers(0, fresh_quantized.num_layers))
            index = int(
                rng.integers(0, fresh_quantized.layer(layer).num_weights)
            )
            bit = int(rng.integers(0, 8))
            loc = BitLocation(layer, index, bit)
            row, bit_in_row = layout.locate_bit(loc)
            assert loc in layout.bits_in_row(row)
            # The bit value in DRAM matches the model's bit value.
            row_data = layout.controller.peek_logical(row)
            dram_bit = (int(row_data[bit_in_row // 8]) >> (bit_in_row % 8)) & 1
            assert dram_bit == fresh_quantized.bit_value(loc)

    def test_locate_bit_validates(self, layout):
        with pytest.raises(ValueError):
            layout.locate_bit(BitLocation(0, 10**9, 0))
        with pytest.raises(ValueError):
            layout.locate_bit(BitLocation(0, 0, 9))

    def test_bits_in_row_empty_for_non_weight_row(self, layout):
        from repro.dram import RowAddress
        # Reserved rows never hold weights.
        reserved = RowAddress(0, 0, GEOMETRY.rows_per_subarray - 1)
        assert layout.bits_in_row(reserved) == []

    def test_row_for_bits_dedups(self, layout):
        bits = layout.bits_in_row(layout.weight_rows()[0])[:16]
        assert len(layout.row_for_bits(bits)) == 1


class TestSync:
    def test_flip_in_dram_propagates_to_model(self, layout, fresh_quantized):
        loc = BitLocation(0, 3, 7)
        row, bit_in_row = layout.locate_bit(loc)
        before = fresh_quantized.bit_value(loc)
        data = layout.controller.peek_logical(row).copy()
        data[bit_in_row // 8] ^= 1 << (bit_in_row % 8)
        layout.controller.poke_logical(row, data)
        layout.sync_model_from_dram()
        assert fresh_quantized.bit_value(loc) == 1 - before

    def test_model_to_dram_roundtrip(self, layout, fresh_quantized):
        fresh_quantized.flip_bit(BitLocation(1, 0, 6))
        layout.sync_dram_from_model()
        snap = fresh_quantized.snapshot()
        layout.sync_model_from_dram()
        assert fresh_quantized.hamming_distance_from(snap) == 0


class TestProtectionPlan:
    def test_partitions_rows(self, layout):
        secured = set(layout.bits_in_row(layout.weight_rows()[0])[:8])
        plan = build_protection_plan(layout, secured)
        assert plan.num_target_rows == 1
        assert set(plan.target_rows) | set(plan.non_target_rows) == set(
            layout.weight_rows()
        )
        assert not set(plan.target_rows) & set(plan.non_target_rows)

    def test_is_secured(self, layout):
        bits = layout.bits_in_row(layout.weight_rows()[0])[:4]
        plan = build_protection_plan(layout, set(bits))
        assert plan.is_secured(bits[0])
        assert not plan.is_secured(BitLocation(0, 10**6, 0))

    def test_empty_plan(self, layout):
        plan = build_protection_plan(layout, set())
        assert plan.num_target_rows == 0
        assert len(plan.non_target_rows) == layout.num_rows
