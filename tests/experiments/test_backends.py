"""Execution backends: shard manifests, merge validation, determinism.

The headline guarantee under test: serial, process-pool, and sharded
(subprocess + merge) execution of the same (scenario, trials, seed,
params) produce *byte-identical* aggregate artifacts.
"""

import json

import pytest

from repro.experiments import (
    ProcessPoolBackend,
    SerialBackend,
    ShardedBackend,
    merge_shards,
    parse_shard,
    run_chunk,
    run_scenario,
    run_shard,
    scenario,
    shard_indices,
    trial_seed,
    unregister,
    write_artifact,
)
from repro.experiments.backends import (
    chunk_stream_path,
    discover_chunks,
    discover_shards,
    discover_streams,
    read_shard,
    read_stream,
    shard_stream_path,
)

# Registered at module import so forked worker processes inherit it.
toy = scenario(
    "backend-toy",
    title="unit-test scenario for backends",
    tags=("test",),
    default_trials=4,
)(lambda ctx: {
    "metrics": {
        "draw": float(ctx.rng().normal()),
        "trial": float(ctx.trial_index),
    },
    "detail": {"trial": ctx.trial_index},
})


def teardown_module(module):
    unregister("backend-toy")


class TestShardManifests:
    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)

    @pytest.mark.parametrize("text", ["2/2", "-1/2", "0/0", "x/2", "1", "1/"])
    def test_parse_shard_rejects(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)

    def test_strided_partition_covers_everything_once(self):
        count = 3
        shards = [shard_indices(10, i, count) for i in range(count)]
        assert shards[0] == [0, 3, 6, 9]
        assert sorted(i for s in shards for i in s) == list(range(10))

    def test_more_shards_than_trials_leaves_empty_shards(self):
        assert shard_indices(2, 2, 4) == []


class TestRunShardAndMerge:
    def _run_all_shards(self, tmp_path, count=2, trials=4, seed=9):
        return [
            run_shard(
                "backend-toy", shard=(i, count), trials=trials, seed=seed,
                directory=tmp_path,
            )
            for i in range(count)
        ]

    def test_shard_stream_header_and_records(self, tmp_path):
        path = self._run_all_shards(tmp_path)[0]
        assert path == shard_stream_path(tmp_path, "backend-toy", 0, 2)
        header, records = read_shard(path)
        assert header["scenario"] == "backend-toy"
        assert header["seed"] == 9
        assert header["trials"] == 4
        assert header["shard"] == {
            "index": 0, "count": 2, "trial_indices": [0, 2],
        }
        assert sorted(records) == [0, 2]
        assert records[0]["seed"] == trial_seed(9, 0)

    def test_merge_equals_serial_run(self, tmp_path):
        paths = self._run_all_shards(tmp_path)
        merged = merge_shards(paths, scenario="backend-toy")
        serial = run_scenario("backend-toy", trials=4, seed=9)
        assert merged.per_trial_metrics == serial.per_trial_metrics
        assert merged.detail == serial.detail
        assert merged.to_json() == serial.to_json()

    def test_merge_discovers_shards(self, tmp_path):
        self._run_all_shards(tmp_path)
        found = discover_shards(tmp_path, "backend-toy")
        assert len(found) == 2
        assert merge_shards(found).trials == 4

    def test_merge_rejects_missing_shard(self, tmp_path):
        paths = self._run_all_shards(tmp_path)
        with pytest.raises(ValueError, match="missing trial"):
            merge_shards([paths[0]])

    def test_merge_rejects_duplicate_shard(self, tmp_path):
        paths = self._run_all_shards(tmp_path)
        with pytest.raises(ValueError, match="duplicate shard"):
            merge_shards([paths[0], paths[0]])

    def test_merge_rejects_mismatched_seed(self, tmp_path):
        first = run_shard(
            "backend-toy", shard=(0, 2), trials=4, seed=1,
            directory=tmp_path,
        )
        other_dir = tmp_path / "other"
        second = run_shard(
            "backend-toy", shard=(1, 2), trials=4, seed=2,
            directory=other_dir,
        )
        with pytest.raises(ValueError, match="seed"):
            merge_shards([first, second])

    def test_merge_rejects_tampered_trial_seed(self, tmp_path):
        paths = self._run_all_shards(tmp_path)
        lines = paths[0].read_text().splitlines()
        record = json.loads(lines[1])
        record["seed"] += 1
        lines[1] = json.dumps(record)
        paths[0].write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="derives"):
            merge_shards(paths)

    def test_merge_rejects_foreign_trial_index(self, tmp_path):
        paths = self._run_all_shards(tmp_path)
        lines = paths[0].read_text().splitlines()
        record = json.loads(lines[1])
        record["trial_index"] = 1  # owned by shard 1, not shard 0
        record["seed"] = trial_seed(9, 1)
        lines[1] = json.dumps(record)
        paths[0].write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="does not belong"):
            merge_shards(paths)

    def test_shard_resume_skips_completed_trials(self, tmp_path):
        path = run_shard(
            "backend-toy", shard=(0, 2), trials=4, seed=9,
            directory=tmp_path,
        )
        before = path.read_text()
        again = run_shard(
            "backend-toy", shard=(0, 2), trials=4, seed=9,
            directory=tmp_path, resume=True,
        )
        assert again == path
        assert path.read_text() == before  # nothing re-ran, nothing appended


class TestRunChunkAndMerge:
    """Chunk leases stream like shards and merge interchangeably."""

    def test_chunk_stream_header_and_records(self, tmp_path):
        path = run_chunk(
            "backend-toy", chunk_id=0, indices=[0, 2], trials=4, seed=9,
            directory=tmp_path,
        )
        assert path == chunk_stream_path(tmp_path, "backend-toy", 0)
        header, records = read_stream(path)
        assert header["scenario"] == "backend-toy"
        assert header["seed"] == 9
        assert header["trials"] == 4
        assert header["chunk"] == {"id": 0, "trial_indices": [0, 2]}
        assert sorted(records) == [0, 2]
        assert records[0]["seed"] == trial_seed(9, 0)

    def test_chunk_rejects_out_of_range_indices(self, tmp_path):
        with pytest.raises(ValueError, match="out of range"):
            run_chunk(
                "backend-toy", chunk_id=0, indices=[0, 4], trials=4,
                directory=tmp_path,
            )

    def test_chunk_resume_skips_completed_trials(self, tmp_path):
        path = run_chunk(
            "backend-toy", chunk_id=3, indices=[1, 3], trials=4, seed=9,
            directory=tmp_path,
        )
        before = path.read_text()
        again = run_chunk(
            "backend-toy", chunk_id=3, indices=[1, 3], trials=4, seed=9,
            directory=tmp_path, resume=True,
        )
        assert again == path
        assert path.read_text() == before  # replayed, nothing re-ran

    def test_merge_fuses_chunk_streams(self, tmp_path):
        paths = [
            run_chunk("backend-toy", chunk_id=k, indices=indices, trials=4,
                      seed=9, directory=tmp_path)
            for k, indices in enumerate([[0, 1], [2, 3]])
        ]
        merged = merge_shards(paths, scenario="backend-toy")
        serial = run_scenario("backend-toy", trials=4, seed=9)
        assert merged.to_json() == serial.to_json()

    def test_merge_mixes_shard_and_chunk_streams(self, tmp_path):
        shard = run_shard(
            "backend-toy", shard=(0, 2), trials=4, seed=9,
            directory=tmp_path,
        )  # owns 0, 2
        chunk = run_chunk(
            "backend-toy", chunk_id=7, indices=[1, 3], trials=4, seed=9,
            directory=tmp_path,
        )
        merged = merge_shards([shard, chunk], scenario="backend-toy")
        serial = run_scenario("backend-toy", trials=4, seed=9)
        assert merged.to_json() == serial.to_json()

    def test_merge_tolerates_identical_duplicates(self, tmp_path):
        """A salvaged attempt plus its retry may both record a trial;
        identical duplicate records merge cleanly."""
        a = run_chunk("backend-toy", chunk_id=0, indices=[0, 1, 2, 3],
                      trials=4, seed=9, directory=tmp_path)
        b = run_chunk("backend-toy", chunk_id=1, indices=[1, 3], trials=4,
                      seed=9, directory=tmp_path)
        merged = merge_shards([a, b], scenario="backend-toy")
        assert merged.to_json() == run_scenario(
            "backend-toy", trials=4, seed=9
        ).to_json()

    def test_merge_rejects_conflicting_duplicates(self, tmp_path):
        a = run_chunk("backend-toy", chunk_id=0, indices=[0, 1, 2, 3],
                      trials=4, seed=9, directory=tmp_path)
        b = run_chunk("backend-toy", chunk_id=1, indices=[1], trials=4,
                      seed=9, directory=tmp_path)
        lines = b.read_text().splitlines()
        record = json.loads(lines[1])
        record["metrics"]["draw"] += 1.0
        lines[1] = json.dumps(record)
        b.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="conflicting"):
            merge_shards([a, b])

    def test_merge_rejects_foreign_chunk_trial(self, tmp_path):
        path = run_chunk("backend-toy", chunk_id=0, indices=[0, 1],
                         trials=4, seed=9, directory=tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["trial_index"] = 2  # not in the chunk manifest
        record["seed"] = trial_seed(9, 2)
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="does not belong"):
            merge_shards([path], scenario="backend-toy")

    def test_discover_streams_finds_both_kinds(self, tmp_path):
        run_shard("backend-toy", shard=(0, 2), trials=4, seed=9,
                  directory=tmp_path)
        run_chunk("backend-toy", chunk_id=0, indices=[1, 3], trials=4,
                  seed=9, directory=tmp_path)
        assert len(discover_shards(tmp_path, "backend-toy")) == 1
        assert len(discover_chunks(tmp_path, "backend-toy")) == 1
        merged = merge_shards(discover_streams(tmp_path, "backend-toy"))
        assert merged.trials == 4


class TestCrossBackendDeterminism:
    """The acceptance criterion: identical artifacts from every backend."""

    def test_serial_pool_sharded_artifacts_are_byte_identical(self, tmp_path):
        results = {
            "serial": run_scenario(
                "fig6", trials=3, seed=3, backend=SerialBackend(),
            ),
            "pool": run_scenario(
                "fig6", trials=3, seed=3, backend=ProcessPoolBackend(2),
            ),
            # Sharded: two `python -m repro run fig6 --shard i/2`
            # subprocesses stream JSONL, read back and aggregated.
            "sharded": run_scenario(
                "fig6", trials=3, seed=3,
                backend=ShardedBackend(2, workdir=tmp_path / "shards"),
            ),
        }
        artifacts = {}
        for label, result in results.items():
            directory = tmp_path / label
            artifacts[label] = write_artifact(
                result, directory=directory
            ).read_bytes()
        assert artifacts["serial"] == artifacts["pool"]
        assert artifacts["serial"] == artifacts["sharded"]

    def test_sharded_backend_round_trips_non_cli_params(self, tmp_path):
        """Tuple grids and numeric strings must survive the subprocess
        hop losslessly (JSON transport, not --param coercion)."""
        params = {"t_rh_grid": (1000, 2000), "n_targets": 8, "tag": "32"}
        sharded = run_scenario(
            "sweep-hammer-rate", trials=2, seed=4, params=params,
            backend=ShardedBackend(2, workdir=tmp_path / "shards"),
        )
        serial = run_scenario(
            "sweep-hammer-rate", trials=2, seed=4, params=params,
        )
        assert sharded.to_json() == serial.to_json()
        assert sharded.params["tag"] == "32"  # not coerced to int 32

    def test_sharded_backend_resume_replays_existing_streams(self, tmp_path):
        workdir = tmp_path / "shards"
        for i in range(2):
            run_shard(
                "fig6", shard=(i, 2), trials=3, seed=3, directory=workdir,
            )
        before = {
            p.name: p.read_text() for p in discover_shards(workdir, "fig6")
        }
        result = run_scenario(
            "fig6", trials=3, seed=3,
            backend=ShardedBackend(2, workdir=workdir, resume=True),
        )
        after = {
            p.name: p.read_text() for p in discover_shards(workdir, "fig6")
        }
        assert after == before  # workers replayed; nothing re-ran/appended
        serial = run_scenario("fig6", trials=3, seed=3)
        assert result.to_json() == serial.to_json()

    def test_numpy_params_are_normalised_not_fatal(self, tmp_path):
        import numpy as np

        serial = run_scenario(
            "backend-toy", trials=2, seed=1,
            params={"n": np.int64(16), "grid": np.asarray([1, 2])},
        )
        assert serial.params == {"n": 16, "grid": [1, 2]}
        with pytest.raises(TypeError, match="not JSON-serializable"):
            run_scenario(
                "backend-toy", trials=2, seed=1, params={"bad": object()},
            )

    def test_sharded_backend_reports_worker_failure(self, tmp_path):
        with pytest.raises((RuntimeError, ValueError)):
            # backend-toy is only registered in this process; the shard
            # subprocesses cannot resolve it and must fail loudly.
            run_scenario(
                "backend-toy", trials=2, seed=0,
                backend=ShardedBackend(2, workdir=tmp_path),
            )

    def test_sharded_backend_imports_scenario_modules(
        self, tmp_path, monkeypatch
    ):
        """REPRO_SCENARIO_MODULES makes extra scenarios visible to shard
        worker subprocesses (and any fresh interpreter)."""
        module = tmp_path / "extra_scenarios_mod.py"
        module.write_text(
            "from repro.experiments import scenario\n"
            "scenario('plugin-toy', tags=('test',), default_trials=2)(\n"
            "    lambda ctx: {'metrics': {'seed': float(ctx.seed)},\n"
            "                 'detail': {}}\n"
            ")\n"
        )
        monkeypatch.setenv("PYTHONPATH", str(tmp_path))
        monkeypatch.setenv("REPRO_SCENARIO_MODULES", "extra_scenarios_mod")
        monkeypatch.syspath_prepend(str(tmp_path))
        import extra_scenarios_mod  # noqa: F401  (registers in-process too)

        try:
            result = run_scenario(
                "plugin-toy", trials=2, seed=5,
                backend=ShardedBackend(2, workdir=tmp_path / "shards"),
            )
            serial = run_scenario("plugin-toy", trials=2, seed=5)
            assert result.to_json() == serial.to_json()
        finally:
            unregister("plugin-toy")
            import sys

            sys.modules.pop("extra_scenarios_mod", None)
