"""Tests for the tournament-matrix scenario's grid, cost, and cell logic."""

import pytest

from repro.analysis.defense_eval import (
    TOURNAMENT_CELL_METRICS,
    evaluate_tournament_cell,
    tournament_matrix_rows,
)
from repro.defenses.protocol import DefenseContext
from repro.defenses.registry import build_defense
from repro.experiments.registry import get_scenario
from repro.experiments.tournament import _tournament_cost, tournament_cells


class TestGrid:
    def test_default_grid_order(self):
        cells = tournament_cells({})
        assert len(cells) == 12  # 1 model x 4 defenses x 3 attackers x 1
        assert cells[0] == ("resnet20_cifar", "none", "random", 10)
        # models > defenses > attackers > budgets ordering:
        assert [c[1] for c in cells[:3]] == ["none"] * 3
        assert [c[2] for c in cells[:3]] == ["random", "bfa", "smart-bfa"]

    def test_cli_string_params(self):
        cells = tournament_cells({
            "defenses": "none,radar",
            "attackers": " random , smart-bfa ",
            "budgets": "4,8",
        })
        assert len(cells) == 8
        assert cells[0] == ("resnet20_cifar", "none", "random", 4)
        assert cells[-1] == ("resnet20_cifar", "radar", "smart-bfa", 8)

    def test_scalar_budget_param(self):
        cells = tournament_cells({"budgets": 5})
        assert all(c[3] == 5 for c in cells)

    def test_default_trials_cover_grid(self):
        assert get_scenario("tournament-matrix").default_trials == len(
            tournament_cells({})
        )


class TestCost:
    def test_multiplies_registry_hints(self):
        params = {"defenses": "radar", "attackers": "bfa", "budgets": "10"}
        # radar cost 1.5 x bfa cost 3.0 x budget 10
        assert _tournament_cost(0, params) == pytest.approx(45.0)

    def test_replicates_reuse_cell_cost(self):
        cells = tournament_cells({})
        assert _tournament_cost(3, {}) == _tournament_cost(
            3 + len(cells), {}
        )

    def test_unknown_cell_name_costs_one(self):
        assert _tournament_cost(
            0, {"defenses": "not-a-defense"}
        ) == pytest.approx(1.0)


class TestMatrixRows:
    def test_replicates_average_per_cell(self):
        cells = [("m", "none", "random", 4), ("m", "radar", "bfa", 4)]
        base = {key: 0.0 for key in TOURNAMENT_CELL_METRICS}
        trials = [
            {**base, "cell_index": 0, "floor_accuracy": 0.8},
            {**base, "cell_index": 1, "floor_accuracy": 0.5},
            {**base, "cell_index": 0, "floor_accuracy": 0.6},  # replicate
        ]
        rows = tournament_matrix_rows(cells, trials)
        assert rows[cells[0]]["floor_accuracy"] == pytest.approx(0.7)
        assert rows[cells[1]]["floor_accuracy"] == pytest.approx(0.5)
        assert set(rows[cells[0]]) == set(TOURNAMENT_CELL_METRICS)


class TestCell:
    def test_cell_reports_full_metric_vocabulary(
        self, fresh_quantized, tiny_dataset
    ):
        defense = build_defense(
            "none", DefenseContext(qmodel=fresh_quantized,
                                   dataset=tiny_dataset)
        )
        try:
            metrics = evaluate_tournament_cell(
                "random", defense, tiny_dataset, budget=3, seed=0
            )
        finally:
            defense.close()
        assert set(metrics) == set(TOURNAMENT_CELL_METRICS)
        assert metrics["clean_accuracy"] > 0.5
        assert metrics["flips_landed"] == 3.0
        assert metrics["detections"] == 0.0
        assert metrics["detection_ns"] == 0.0

    def test_radar_cell_detects_and_recovers_bfa(
        self, fresh_quantized, tiny_dataset
    ):
        defense = build_defense(
            "radar", DefenseContext(qmodel=fresh_quantized,
                                    dataset=tiny_dataset)
        )
        try:
            metrics = evaluate_tournament_cell(
                "bfa", defense, tiny_dataset, budget=6, seed=0
            )
        finally:
            defense.close()
        assert metrics["detections"] > 0
        assert metrics["detection_ns"] > 0
        assert metrics["recovery_accuracy"] >= (
            metrics["floor_accuracy"] - 0.05
        )

    def test_radar_cell_blind_to_smart_bfa(
        self, fresh_quantized, tiny_dataset
    ):
        defense = build_defense(
            "radar", DefenseContext(qmodel=fresh_quantized,
                                    dataset=tiny_dataset)
        )
        try:
            metrics = evaluate_tournament_cell(
                "smart-bfa", defense, tiny_dataset, budget=6, seed=0
            )
        finally:
            defense.close()
        assert metrics["flips_landed"] > 0
        assert metrics["detections"] == 0.0
        assert metrics["recovered_weights"] == 0.0
