"""Per-trial JSONL streaming and resume in the scenario runner."""

import json
import pathlib

import pytest

from repro.experiments import run_scenario, scenario, unregister

EXECUTIONS = []


def _crashing_trial(ctx):
    """Dies on trial 2 while the ``fail_flag`` file exists."""
    flag = ctx.param("fail_flag")
    if flag and ctx.trial_index == 2 and pathlib.Path(flag).exists():
        raise RuntimeError("trial killed mid-sweep")
    return {
        "metrics": {"value": float(ctx.seed % 97)},
        "detail": {"trial": ctx.trial_index},
    }


# Registered at module import so forked pool workers inherit it.
crashing = scenario(
    "stream-crashing",
    title="crashes mid-sweep on demand",
    tags=("test",),
    default_trials=4,
)(_crashing_trial)

counting = scenario(
    "stream-counting",
    title="streams per-trial results",
    tags=("test",),
    default_trials=4,
)(lambda ctx: (
    EXECUTIONS.append(ctx.trial_index),
    {"metrics": {"value": float(ctx.seed % 97)},
     "detail": {"trial": ctx.trial_index}},
)[1])


@pytest.fixture(autouse=True)
def _reset():
    EXECUTIONS.clear()
    yield
    unregister("stream-counting")
    from repro.experiments.registry import register
    register(counting)


# Register once at import; unregister/register dance keeps the scenario
# available across tests in this module without double-registration.
def setup_module(module):
    pass


def teardown_module(module):
    unregister("stream-crashing")


class TestStreaming:
    def test_stream_file_has_header_and_trials(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        result = run_scenario(
            "stream-counting", trials=3, seed=5, stream_path=path
        )
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert lines[0]["scenario"] == "stream-counting"
        assert lines[0]["seed"] == 5
        trial_lines = [l for l in lines[1:] if l["type"] == "trial"]
        assert sorted(l["trial_index"] for l in trial_lines) == [0, 1, 2]
        for line in trial_lines:
            index = line["trial_index"]
            assert line["metrics"]["value"] == (
                result.per_trial_metrics[index]["value"]
            )
            assert line["detail"] == {"trial": index}

    def test_resume_skips_completed_trials(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        baseline = run_scenario("stream-counting", trials=4, seed=9)
        run_scenario("stream-counting", trials=2, seed=9, stream_path=path)
        assert EXECUTIONS.count(0) == 2  # baseline + stream run
        EXECUTIONS.clear()
        resumed = run_scenario(
            "stream-counting", trials=4, seed=9, stream_path=path,
            resume=True,
        )
        # Only the two missing trials actually executed.
        assert sorted(EXECUTIONS) == [2, 3]
        assert resumed.per_trial_metrics == baseline.per_trial_metrics
        assert resumed.metrics["value"].mean == baseline.metrics["value"].mean

    def test_resume_preserves_detail_from_trial_zero(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        run_scenario("stream-counting", trials=2, seed=3, stream_path=path)
        EXECUTIONS.clear()
        resumed = run_scenario(
            "stream-counting", trials=2, seed=3, stream_path=path,
            resume=True,
        )
        assert EXECUTIONS == []  # everything replayed from the stream
        assert resumed.detail == {"trial": 0}

    def test_resume_rejects_mismatched_run(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        run_scenario("stream-counting", trials=2, seed=1, stream_path=path)
        with pytest.raises(ValueError, match="does not match"):
            run_scenario(
                "stream-counting", trials=2, seed=2, stream_path=path,
                resume=True,
            )

    def test_plain_rerun_truncates_stale_stream(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        run_scenario("stream-counting", trials=3, seed=1, stream_path=path)
        run_scenario("stream-counting", trials=1, seed=1, stream_path=path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len([l for l in lines if l.get("type") == "trial"]) == 1


class TestCrashResume:
    """A trial dying mid-sweep must not lose completed trials: the stream
    keeps them, and --resume finishes only the missing ones."""

    def _streamed_indices(self, path):
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        return sorted(
            l["trial_index"] for l in lines if l.get("type") == "trial"
        )

    def test_serial_crash_flushes_completed_then_resumes(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        flag = tmp_path / "fail"
        flag.touch()
        params = {"fail_flag": str(flag)}
        with pytest.raises(RuntimeError, match="killed mid-sweep"):
            run_scenario(
                "stream-crashing", trials=4, seed=7, params=params,
                stream_path=path,
            )
        # Trials 0 and 1 completed before the crash and were flushed.
        assert self._streamed_indices(path) == [0, 1]
        flag.unlink()
        resumed = run_scenario(
            "stream-crashing", trials=4, seed=7, params=params,
            stream_path=path, resume=True,
        )
        baseline = run_scenario(
            "stream-crashing", trials=4, seed=7, params=params,
        )
        assert self._streamed_indices(path) == [0, 1, 2, 3]
        assert resumed.per_trial_metrics == baseline.per_trial_metrics
        assert resumed.to_json() == baseline.to_json()

    def test_pool_crash_flushes_other_workers_trials(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        flag = tmp_path / "fail"
        flag.touch()
        params = {"fail_flag": str(flag)}
        with pytest.raises(RuntimeError, match="killed mid-sweep"):
            run_scenario(
                "stream-crashing", trials=4, seed=7, params=params,
                jobs=2, stream_path=path,
            )
        # The pool drains before re-raising: every non-crashing trial is
        # recorded even though trial 2 died.
        assert self._streamed_indices(path) == [0, 1, 3]
        flag.unlink()
        resumed = run_scenario(
            "stream-crashing", trials=4, seed=7, params=params,
            stream_path=path, resume=True,
        )
        baseline = run_scenario(
            "stream-crashing", trials=4, seed=7, params=params,
        )
        assert resumed.to_json() == baseline.to_json()
