"""Per-trial JSONL streaming and resume in the scenario runner."""

import json
import pathlib

import pytest

from repro.experiments import run_scenario, scenario, unregister

EXECUTIONS = []


def _crashing_trial(ctx):
    """Dies on trial 2 while the ``fail_flag`` file exists."""
    flag = ctx.param("fail_flag")
    if flag and ctx.trial_index == 2 and pathlib.Path(flag).exists():
        raise RuntimeError("trial killed mid-sweep")
    return {
        "metrics": {"value": float(ctx.seed % 97)},
        "detail": {"trial": ctx.trial_index},
    }


# Registered at module import so forked pool workers inherit it.
crashing = scenario(
    "stream-crashing",
    title="crashes mid-sweep on demand",
    tags=("test",),
    default_trials=4,
)(_crashing_trial)

counting = scenario(
    "stream-counting",
    title="streams per-trial results",
    tags=("test",),
    default_trials=4,
)(lambda ctx: (
    EXECUTIONS.append(ctx.trial_index),
    {"metrics": {"value": float(ctx.seed % 97)},
     "detail": {"trial": ctx.trial_index}},
)[1])


@pytest.fixture(autouse=True)
def _reset():
    EXECUTIONS.clear()
    yield
    unregister("stream-counting")
    from repro.experiments.registry import register
    register(counting)


# Register once at import; unregister/register dance keeps the scenario
# available across tests in this module without double-registration.
def setup_module(module):
    pass


def teardown_module(module):
    unregister("stream-crashing")


class TestStreaming:
    def test_stream_file_has_header_and_trials(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        result = run_scenario(
            "stream-counting", trials=3, seed=5, stream_path=path
        )
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert lines[0]["scenario"] == "stream-counting"
        assert lines[0]["seed"] == 5
        trial_lines = [l for l in lines[1:] if l["type"] == "trial"]
        assert sorted(l["trial_index"] for l in trial_lines) == [0, 1, 2]
        for line in trial_lines:
            index = line["trial_index"]
            assert line["metrics"]["value"] == (
                result.per_trial_metrics[index]["value"]
            )
            assert line["detail"] == {"trial": index}

    def test_resume_skips_completed_trials(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        baseline = run_scenario("stream-counting", trials=4, seed=9)
        run_scenario("stream-counting", trials=2, seed=9, stream_path=path)
        assert EXECUTIONS.count(0) == 2  # baseline + stream run
        EXECUTIONS.clear()
        resumed = run_scenario(
            "stream-counting", trials=4, seed=9, stream_path=path,
            resume=True,
        )
        # Only the two missing trials actually executed.
        assert sorted(EXECUTIONS) == [2, 3]
        assert resumed.per_trial_metrics == baseline.per_trial_metrics
        assert resumed.metrics["value"].mean == baseline.metrics["value"].mean

    def test_resume_preserves_detail_from_trial_zero(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        run_scenario("stream-counting", trials=2, seed=3, stream_path=path)
        EXECUTIONS.clear()
        resumed = run_scenario(
            "stream-counting", trials=2, seed=3, stream_path=path,
            resume=True,
        )
        assert EXECUTIONS == []  # everything replayed from the stream
        assert resumed.detail == {"trial": 0}

    def test_resume_rejects_mismatched_run(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        run_scenario("stream-counting", trials=2, seed=1, stream_path=path)
        with pytest.raises(ValueError, match="does not match"):
            run_scenario(
                "stream-counting", trials=2, seed=2, stream_path=path,
                resume=True,
            )

    def test_plain_rerun_truncates_stale_stream(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        run_scenario("stream-counting", trials=3, seed=1, stream_path=path)
        run_scenario("stream-counting", trials=1, seed=1, stream_path=path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len([l for l in lines if l.get("type") == "trial"]) == 1


class TestCrashResume:
    """A trial dying mid-sweep must not lose completed trials: the stream
    keeps them, and --resume finishes only the missing ones."""

    def _streamed_indices(self, path):
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        return sorted(
            l["trial_index"] for l in lines if l.get("type") == "trial"
        )

    def test_serial_crash_flushes_completed_then_resumes(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        flag = tmp_path / "fail"
        flag.touch()
        params = {"fail_flag": str(flag)}
        with pytest.raises(RuntimeError, match="killed mid-sweep"):
            run_scenario(
                "stream-crashing", trials=4, seed=7, params=params,
                stream_path=path,
            )
        # Trials 0 and 1 completed before the crash and were flushed.
        assert self._streamed_indices(path) == [0, 1]
        flag.unlink()
        resumed = run_scenario(
            "stream-crashing", trials=4, seed=7, params=params,
            stream_path=path, resume=True,
        )
        baseline = run_scenario(
            "stream-crashing", trials=4, seed=7, params=params,
        )
        assert self._streamed_indices(path) == [0, 1, 2, 3]
        assert resumed.per_trial_metrics == baseline.per_trial_metrics
        assert resumed.to_json() == baseline.to_json()

    def test_pool_crash_flushes_other_workers_trials(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        flag = tmp_path / "fail"
        flag.touch()
        params = {"fail_flag": str(flag)}
        with pytest.raises(RuntimeError, match="killed mid-sweep"):
            run_scenario(
                "stream-crashing", trials=4, seed=7, params=params,
                jobs=2, stream_path=path,
            )
        # The pool drains before re-raising: every non-crashing trial is
        # recorded even though trial 2 died.
        assert self._streamed_indices(path) == [0, 1, 3]
        flag.unlink()
        resumed = run_scenario(
            "stream-crashing", trials=4, seed=7, params=params,
            stream_path=path, resume=True,
        )
        baseline = run_scenario(
            "stream-crashing", trials=4, seed=7, params=params,
        )
        assert resumed.to_json() == baseline.to_json()


class TestTornStreams:
    """Crash-truncated JSONL: a torn trailing line (interrupted append)
    must not kill the resume — the torn record is dropped, its trial
    re-runs, and the truncated file stays parseable afterwards."""

    def test_resume_drops_torn_trailing_line_and_reruns_it(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        baseline = run_scenario(
            "stream-counting", trials=3, seed=5, stream_path=path
        )
        lines = path.read_text().splitlines()
        # Simulate a crash mid-append: the last record is half-written.
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:17])
        torn_index = json.loads(lines[-1])["trial_index"]
        EXECUTIONS.clear()
        with pytest.warns(RuntimeWarning, match="torn trailing record"):
            resumed = run_scenario(
                "stream-counting", trials=3, seed=5, stream_path=path,
                resume=True,
            )
        assert EXECUTIONS == [torn_index]  # only the torn trial re-ran
        assert resumed.to_json() == baseline.to_json()
        # The file was truncated before the re-append: every line parses.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_resume_rejects_corrupt_middle_line(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        run_scenario("stream-counting", trials=3, seed=5, stream_path=path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:13]  # corruption *before* intact records
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            run_scenario(
                "stream-counting", trials=3, seed=5, stream_path=path,
                resume=True,
            )

    def test_resume_with_torn_header_starts_over(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        path.write_text('{"type": "hea')  # crash mid-header-write
        with pytest.warns(RuntimeWarning, match="header is torn"):
            result = run_scenario(
                "stream-counting", trials=2, seed=5, stream_path=path,
                resume=True,
            )
        assert sorted(EXECUTIONS) == [0, 1]  # nothing replayable: full run
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert result.trials == 2

    def test_read_stream_tolerates_torn_tail(self, tmp_path):
        from repro.experiments import read_stream

        path = tmp_path / "run.trials.jsonl"
        run_scenario("stream-counting", trials=3, seed=5, stream_path=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:9])
        with pytest.warns(RuntimeWarning, match="torn trailing record"):
            header, records = read_stream(path)
        assert header["scenario"] == "stream-counting"
        assert len(records) == 2  # three trial records minus the torn one

    def test_resume_rejects_corrupt_header_with_records_after(self, tmp_path):
        """A bad header ABOVE intact records is corruption, not a torn
        write — resume must raise, not silently wipe the records."""
        path = tmp_path / "run.trials.jsonl"
        run_scenario("stream-counting", trials=3, seed=5, stream_path=path)
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:10]  # corrupt the header, keep the records
        path.write_text("\n".join(lines) + "\n")
        before = path.read_text()
        with pytest.raises(ValueError, match="corrupt"):
            run_scenario(
                "stream-counting", trials=3, seed=5, stream_path=path,
                resume=True,
            )
        assert path.read_text() == before  # nothing was wiped

    def test_torn_tail_truncation_leaves_no_tmp_litter(self, tmp_path):
        path = tmp_path / "run.trials.jsonl"
        run_scenario("stream-counting", trials=3, seed=5, stream_path=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:11])
        with pytest.warns(RuntimeWarning, match="torn trailing record"):
            run_scenario(
                "stream-counting", trials=3, seed=5, stream_path=path,
                resume=True,
            )
        assert list(tmp_path.glob("*.tmp")) == []
