"""Parallel runner: seeding, aggregation, and --jobs-independence."""

import numpy as np
import pytest

from repro.experiments import run_scenario, scenario, trial_seed, unregister
from repro.experiments.runner import MetricStats

# Registered at module import so forked worker processes inherit it.
toy = scenario(
    "toy-monte-carlo",
    title="unit-test scenario",
    tags=("test",),
    default_trials=4,
)(lambda ctx: {
    "metrics": {
        "draw": float(ctx.rng().normal()),
        "seed": float(ctx.seed),
        "trial": float(ctx.trial_index),
    },
    "detail": {"trial": ctx.trial_index},
})


@toy.check
def _toy_check(result):
    assert result.metrics["draw"].n == result.trials


def teardown_module(module):
    unregister("toy-monte-carlo")


class TestSeeding:
    def test_trial_zero_uses_base_seed(self):
        assert trial_seed(123, 0) == 123

    def test_later_trials_draw_distinct_streams(self):
        seeds = [trial_seed(0, i) for i in range(8)]
        assert len(set(seeds)) == 8

    def test_seed_derivation_is_deterministic(self):
        assert trial_seed(7, 3) == trial_seed(7, 3)
        assert trial_seed(7, 3) != trial_seed(8, 3)


class TestAggregation:
    def test_metric_stats(self):
        stats = MetricStats.from_values([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)
        assert stats.ci95 == pytest.approx(1.96 / np.sqrt(3))
        assert stats.n == 3
        assert stats.values == (1.0, 2.0, 3.0)

    def test_single_trial_has_zero_spread(self):
        stats = MetricStats.from_values([5.0])
        assert stats.std == 0.0 and stats.ci95 == 0.0

    def test_run_aggregates_in_trial_order(self):
        result = run_scenario("toy-monte-carlo", trials=5, seed=11)
        assert result.metrics["trial"].values == (0.0, 1.0, 2.0, 3.0, 4.0)
        assert result.metrics["seed"].values[0] == 11.0
        assert result.detail == {"trial": 0}
        toy.run_checks(result)

    def test_default_trial_count_comes_from_scenario(self):
        result = run_scenario("toy-monte-carlo", seed=0)
        assert result.trials == 4

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="trials"):
            run_scenario("toy-monte-carlo", trials=0)
        with pytest.raises(ValueError, match="jobs"):
            run_scenario("toy-monte-carlo", trials=2, jobs=0)


class TestJobsIndependence:
    def test_parallel_equals_serial(self):
        serial = run_scenario("toy-monte-carlo", trials=6, jobs=1, seed=42)
        parallel = run_scenario("toy-monte-carlo", trials=6, jobs=3, seed=42)
        assert parallel.jobs == 3
        for key in serial.metrics:
            assert serial.metrics[key].values == parallel.metrics[key].values
            assert serial.metrics[key].mean == parallel.metrics[key].mean
        assert serial.per_trial_metrics == parallel.per_trial_metrics

    def test_progress_callback_sees_every_trial(self):
        seen = []
        run_scenario(
            "toy-monte-carlo", trials=3, jobs=1, seed=0,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]
