"""Perf harness: suite schema, artifact writing, CLI entry point."""

import json

import pytest

from repro.bench import HOTPATH_BENCHMARKS, format_suite, run_hotpath_suite
from repro.cli import main
from repro.experiments import write_bench_artifact


@pytest.fixture(scope="module")
def sync_suite():
    return run_hotpath_suite(quick=True, paths=["sync_post_window"])


class TestSuite:
    def test_payload_schema(self, sync_suite):
        assert sync_suite["suite"] == "hotpaths"
        assert sync_suite["quick"] is True
        (bench,) = sync_suite["benchmarks"]
        assert bench["name"] == "sync_post_window"
        assert set(bench["variants"]) == {"before", "after"}
        for variant in bench["variants"].values():
            assert variant["median_ms"] > 0
            assert variant["p95_ms"] >= variant["median_ms"]
        assert bench["parity"] is True
        assert sync_suite["summary"]["sync_post_window"]["speedup"] == (
            bench["speedup"]
        )

    def test_incremental_sync_is_faster(self, sync_suite):
        # The committed BENCH_hotpaths.json records ~13x; assert a floor
        # loose enough that machine load cannot flake the suite (the
        # incremental path reloads 4 rows instead of 272, so anything
        # near parity would indicate the fast path silently fell back).
        assert sync_suite["summary"]["sync_post_window"]["speedup"] >= 3.0

    def test_unknown_path_rejected(self):
        with pytest.raises(KeyError, match="unknown bench path"):
            run_hotpath_suite(quick=True, paths=["nope"])

    def test_all_paths_registered(self):
        assert set(HOTPATH_BENCHMARKS) == {
            "sync_post_window", "bfa_scoring", "forward_backward",
            "bfa_iteration", "hammer_window", "multi_bit_window",
            "fig6_trial", "sweep_trial", "straggler_sweep",
            "radar_detection_sweep", "tournament_trial",
            "defended_vs_undefended", "timing_checker",
        }

    def test_format_suite_renders(self, sync_suite):
        text = format_suite(sync_suite)
        assert "sync_post_window" in text
        assert "speedup" in text


class TestArtifact:
    def test_write_bench_artifact(self, sync_suite, tmp_path):
        path = write_bench_artifact(sync_suite, directory=tmp_path)
        assert path == tmp_path / "BENCH_hotpaths.json"
        loaded = json.loads(path.read_text())
        assert loaded["benchmarks"][0]["name"] == "sync_post_window"

    def test_env_override_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "bench"))
        from repro.experiments import default_bench_dir

        assert default_bench_dir() == tmp_path / "bench"


class TestCli:
    def test_bench_command(self, tmp_path, capsys):
        code = main([
            "bench", "--quick", "--paths", "sync_post_window",
            "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro bench" in out
        assert (tmp_path / "BENCH_hotpaths.json").exists()

    def test_bench_unknown_path_fails_cleanly(self, capsys):
        code = main(["bench", "--quick", "--paths", "bogus"])
        assert code == 2
        assert "unknown bench path" in capsys.readouterr().err
