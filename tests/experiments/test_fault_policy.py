"""Fault policy of the work-stealing sharded scheduler.

Covers the ISSUE 4 acceptance criteria: a hung worker is timeout-killed
and its chunk requeued; a crashed worker's completed trials are salvaged
and the chunk retried; the retry budget is bounded and exhaustion
preserves the failing worker's error tail; after a failed sweep,
``--resume`` re-runs only the genuinely missing trials (nothing lost,
nothing recomputed); and in every recovered case the artifact is
byte-identical to the serial backend's.

All tests use the built-in ``fig6`` scenario (cheap, deterministic, and
resolvable by chunk-worker subprocesses) and inject faults through the
``REPRO_CHAOS`` env hook consulted only by chunk workers.
"""

import json
from collections import Counter

import pytest

from repro.experiments import (
    SerialBackend,
    ShardedBackend,
    run_scenario,
    write_artifact,
)
from repro.experiments.backends import discover_chunks

SCENARIO = "fig6"


def _serial(trials=4, seed=3):
    return run_scenario(SCENARIO, trials=trials, seed=seed,
                        backend=SerialBackend())


def _stream_counts(path) -> Counter:
    counts = Counter()
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("type") == "trial":
            counts[record["trial_index"]] += 1
    return counts


class TestBackendValidation:
    @pytest.mark.parametrize("kwargs", [
        {"timeout": 0}, {"timeout": -1.0}, {"retries": -1}, {"chunk_size": 0},
    ])
    def test_rejects_bad_fault_policy_args(self, kwargs):
        with pytest.raises(ValueError):
            ShardedBackend(2, **kwargs)

    def test_partition_auto_targets_four_leases_per_worker(self):
        backend = ShardedBackend(2)
        chunks = backend._partition(list(range(16)), first_id=0)
        assert [indices for _, indices in chunks] == [
            [i, i + 1] for i in range(0, 16, 2)
        ]
        assert [chunk_id for chunk_id, _ in chunks] == list(range(8))

    def test_partition_respects_explicit_size_and_first_id(self):
        backend = ShardedBackend(2, chunk_size=3)
        chunks = backend._partition([0, 1, 2, 3, 4, 5, 6], first_id=5)
        assert chunks == [(5, [0, 1, 2]), (6, [3, 4, 5]), (7, [6])]

    def test_static_partition_reproduces_legacy_strided_schedule(self):
        backend = ShardedBackend(2, static=True)
        chunks = backend._partition(list(range(8)), first_id=0)
        assert chunks == [(0, [0, 2, 4, 6]), (1, [1, 3, 5, 7])]
        # More workers than trials: empty slices produce no lease.
        assert ShardedBackend(4, static=True)._partition([0, 1], 0) == [
            (0, [0]), (1, [1]),
        ]

    def test_static_mode_rejects_chunk_size(self):
        with pytest.raises(ValueError, match="static"):
            ShardedBackend(2, static=True, chunk_size=2)

    def test_static_mode_matches_serial(self, tmp_path):
        result = run_scenario(
            SCENARIO, trials=4, seed=3,
            backend=ShardedBackend(2, workdir=tmp_path / "work",
                                   static=True),
        )
        assert result.to_json() == _serial().to_json()


class TestCrashRecovery:
    def test_crashed_worker_is_salvaged_and_retried_to_completion(
        self, tmp_path
    ):
        serial = _serial()
        result = run_scenario(
            SCENARIO, trials=4, seed=3,
            backend=ShardedBackend(
                2, workdir=tmp_path / "work",
                env={"REPRO_CHAOS": "crash"}, retries=2, chunk_size=2,
            ),
        )
        # The injection actually fired (the marker is the once-claim).
        assert (tmp_path / "work" / ".repro-chaos-crash").exists()
        a = write_artifact(serial, directory=tmp_path / "a").read_bytes()
        b = write_artifact(result, directory=tmp_path / "b").read_bytes()
        assert a == b

    def test_hung_worker_is_killed_and_requeued(self, tmp_path):
        serial = _serial()
        result = run_scenario(
            SCENARIO, trials=4, seed=3,
            backend=ShardedBackend(
                2, workdir=tmp_path / "work",
                env={"REPRO_CHAOS": "hang"},
                timeout=4, retries=2, chunk_size=2,
            ),
        )
        assert (tmp_path / "work" / ".repro-chaos-hang").exists()
        assert result.to_json() == serial.to_json()

    def test_acceptance_hung_plus_crashing_worker_four_shards(self, tmp_path):
        """The ISSUE acceptance run: --backend sharded --shards 4
        --shard-timeout T --retries 2 with one hung and one crashed
        worker completes with a serial-identical artifact."""
        serial = _serial(trials=8)
        result = run_scenario(
            SCENARIO, trials=8, seed=3,
            backend=ShardedBackend(
                4, workdir=tmp_path / "work",
                env={"REPRO_CHAOS": "crash,hang"},
                timeout=4, retries=2, chunk_size=2,
            ),
        )
        assert (tmp_path / "work" / ".repro-chaos-crash").exists()
        assert (tmp_path / "work" / ".repro-chaos-hang").exists()
        a = write_artifact(serial, directory=tmp_path / "a").read_bytes()
        b = write_artifact(result, directory=tmp_path / "b").read_bytes()
        assert a == b


class TestRetryExhaustion:
    def test_exhaustion_raises_with_error_tail_and_resume_hint(
        self, tmp_path
    ):
        with pytest.raises(RuntimeError) as err:
            run_scenario(
                SCENARIO, trials=4, seed=3,
                backend=ShardedBackend(
                    2, workdir=tmp_path / "work",
                    env={"REPRO_CHAOS": "crash-start"},
                    retries=1, chunk_size=2,
                ),
            )
        message = str(err.value)
        assert "retry budget exhausted" in message
        assert "--resume" in message
        # The failing worker's stderr tail is preserved in the error.
        assert "chaos: injected worker crash at chunk start" in message
        assert "attempt 2" in message  # retries=1 -> two attempts recorded

    def test_ephemeral_workdir_is_kept_on_failure(self, tmp_path, capsys):
        """No persistent workdir: the temp dir must survive a failed run
        (reported via warning) instead of destroying partial streams."""
        import pathlib
        import shutil

        with pytest.warns(RuntimeWarning, match="kept for inspection"):
            with pytest.raises(RuntimeError) as err:
                run_scenario(
                    SCENARIO, trials=2, seed=3,
                    backend=ShardedBackend(
                        1, env={"REPRO_CHAOS": "crash-start"}, retries=0,
                    ),
                )
        workdir = pathlib.Path(
            str(err.value).split("chunk streams under ")[1].split(")")[0]
        )
        assert workdir.is_dir()
        shutil.rmtree(workdir, ignore_errors=True)


class TestSalvageThenResume:
    def test_resume_runs_only_missing_trials(self, tmp_path):
        """Forced mid-sweep failure, then resume: every trial lands in
        the coordinator stream exactly once."""
        serial = _serial()
        stream = tmp_path / "fig6.trials.jsonl"
        # One worker, one 4-trial chunk, crash after the first recorded
        # trial, zero retries: the run fails but must salvage trial 0.
        with pytest.raises(RuntimeError):
            run_scenario(
                SCENARIO, trials=4, seed=3, stream_path=stream,
                backend=ShardedBackend(
                    1, workdir=tmp_path / "work",
                    env={"REPRO_CHAOS": "crash"}, retries=0, chunk_size=4,
                ),
            )
        salvaged = _stream_counts(stream)
        assert salvaged, "no trials salvaged into the coordinator stream"
        assert set(salvaged) != {0, 1, 2, 3}, "nothing left to resume"
        result = run_scenario(
            SCENARIO, trials=4, seed=3, stream_path=stream, resume=True,
            backend=ShardedBackend(
                1, workdir=tmp_path / "work", resume=True, chunk_size=4,
            ),
        )
        counts = _stream_counts(stream)
        assert counts == Counter({0: 1, 1: 1, 2: 1, 3: 1})
        assert result.to_json() == serial.to_json()

    def test_backend_resume_salvages_chunk_streams_without_coordinator_stream(
        self, tmp_path
    ):
        """Chunk streams left in the workdir by an aborted run are
        harvested by a resume run before any worker is dispatched."""
        serial = _serial()
        work = tmp_path / "work"
        with pytest.raises(RuntimeError):
            run_scenario(
                SCENARIO, trials=4, seed=3,
                backend=ShardedBackend(
                    1, workdir=work, env={"REPRO_CHAOS": "crash"},
                    retries=0, chunk_size=4,
                ),
            )
        before = {p.name: p.read_text() for p in discover_chunks(work, SCENARIO)}
        assert before, "aborted run left no chunk streams to salvage"
        result = run_scenario(
            SCENARIO, trials=4, seed=3,
            backend=ShardedBackend(
                1, workdir=work, resume=True, chunk_size=4,
            ),
        )
        assert result.to_json() == serial.to_json()
        # Salvaged streams stay on disk (they are the crash-safe record).
        after = {p.name: p.read_text() for p in discover_chunks(work, SCENARIO)}
        for name, text in before.items():
            assert after[name] == text

    def test_resume_with_nothing_missing_dispatches_no_worker(self, tmp_path):
        """A complete set of chunk streams resumes without any
        subprocess (no new attempt logs appear)."""
        work = tmp_path / "work"
        run_scenario(
            SCENARIO, trials=4, seed=3,
            backend=ShardedBackend(2, workdir=work, chunk_size=2),
        )
        logs_before = sorted(p.name for p in work.glob("*.log"))
        result = run_scenario(
            SCENARIO, trials=4, seed=3,
            backend=ShardedBackend(2, workdir=work, resume=True,
                                   chunk_size=2),
        )
        assert sorted(p.name for p in work.glob("*.log")) == logs_before
        assert result.to_json() == _serial().to_json()

    def test_resume_raises_loudly_on_corrupt_chunk_stream(self, tmp_path):
        """Mid-file corruption in a salvageable stream must surface, not
        be silently skipped (which would re-run recorded trials)."""
        work = tmp_path / "work"
        run_scenario(
            SCENARIO, trials=4, seed=3,
            backend=ShardedBackend(2, workdir=work, chunk_size=2),
        )
        chunk = discover_chunks(work, SCENARIO)[0]
        lines = chunk.read_text().splitlines()
        lines[1] = lines[1][:15]  # corrupt a non-trailing record
        chunk.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            run_scenario(
                SCENARIO, trials=4, seed=3,
                backend=ShardedBackend(2, workdir=work, resume=True,
                                       chunk_size=2),
            )


class TestWorkdirHygiene:
    def test_fresh_run_rearms_chaos_markers(self, tmp_path):
        """Workdir reuse must not disarm a requested fault injection:
        spent once-per-directory markers are cleared on a fresh run."""
        work = tmp_path / "work"
        backend = lambda: ShardedBackend(
            2, workdir=work, env={"REPRO_CHAOS": "crash"},
            retries=2, chunk_size=2,
        )
        run_scenario(SCENARIO, trials=4, seed=3, backend=backend())
        marker = work / ".repro-chaos-crash"
        assert marker.exists()
        first_fired = marker.stat().st_mtime_ns
        result = run_scenario(SCENARIO, trials=4, seed=3, backend=backend())
        assert marker.exists()  # re-created: the injection fired again
        assert marker.stat().st_mtime_ns > first_fired
        assert result.to_json() == _serial().to_json()

    def test_launch_failure_does_not_leak_log_handle(self, tmp_path):
        backend = ShardedBackend(
            1, workdir=tmp_path / "work", python="/nonexistent/python",
            retries=0,
        )
        with pytest.raises(FileNotFoundError):
            run_scenario(SCENARIO, trials=2, seed=3, backend=backend)


class TestStreamFaultModes:
    """The REPRO_CHAOS stream-level modes: stalled I/O and torn writes."""

    def test_stalled_io_worker_is_reclaimed_by_timeout(self, tmp_path):
        """A worker that stops writing (heartbeats included) but stays
        alive must be timeout-killed even with heartbeats enabled —
        silence, not process death, is the hang signal."""
        serial = _serial()
        result = run_scenario(
            SCENARIO, trials=4, seed=3,
            backend=ShardedBackend(
                2, workdir=tmp_path / "work",
                env={"REPRO_CHAOS": "stall-io"},
                timeout=3, retries=2, chunk_size=2,
                heartbeat_interval=0.2, backoff_base=0.05,
            ),
        )
        assert (tmp_path / "work" / ".repro-chaos-stall-io").exists()
        a = write_artifact(serial, directory=tmp_path / "a").read_bytes()
        b = write_artifact(result, directory=tmp_path / "b").read_bytes()
        assert a == b

    def test_truncated_stream_is_salvaged_and_retried(self, tmp_path):
        """A worker that dies mid-write leaves a torn trailing record:
        the parser drops it, complete records salvage, the rest re-run."""
        serial = _serial()
        with pytest.warns(RuntimeWarning, match="torn trailing record"):
            result = run_scenario(
                SCENARIO, trials=4, seed=3,
                backend=ShardedBackend(
                    2, workdir=tmp_path / "work",
                    env={"REPRO_CHAOS": "truncate-stream"},
                    retries=2, chunk_size=2, backoff_base=0.05,
                ),
            )
        assert (tmp_path / "work" / ".repro-chaos-truncate-stream").exists()
        a = write_artifact(serial, directory=tmp_path / "a").read_bytes()
        b = write_artifact(result, directory=tmp_path / "b").read_bytes()
        assert a == b


class TestHeartbeatAwareTimeouts:
    """--heartbeat-interval separates slow-but-alive from hung."""

    _SLOW_ENV = {"REPRO_CHAOS": "slow", "REPRO_CHAOS_SLOW_S": "1.2"}

    def test_heartbeating_slow_worker_outlives_its_deadline(self, tmp_path):
        """Four 1.2s trials in one chunk against a 2s timeout: with
        heartbeats flowing the scheduler must warn and extend, never
        kill — retries=0 proves no retry was needed."""
        serial = _serial()
        with pytest.warns(RuntimeWarning, match="still heartbeating"):
            result = run_scenario(
                SCENARIO, trials=4, seed=3,
                backend=ShardedBackend(
                    1, workdir=tmp_path / "work", env=dict(self._SLOW_ENV),
                    timeout=2, retries=0, chunk_size=4,
                    heartbeat_interval=0.3,
                ),
            )
        assert result.to_json() == serial.to_json()
        # One attempt only: the worker was never killed and relaunched.
        logs = sorted(p.name for p in (tmp_path / "work").glob("*.log"))
        assert logs == ["fig6.chunk-0000.attempt-1.log"]

    def test_no_heartbeat_regression_deadline_still_kills(self, tmp_path):
        """Without --heartbeat-interval the historical contract stands:
        a worker past its deadline is killed no matter how alive it is."""
        with pytest.raises(RuntimeError) as err:
            run_scenario(
                SCENARIO, trials=4, seed=3,
                backend=ShardedBackend(
                    1, workdir=tmp_path / "work", env=dict(self._SLOW_ENV),
                    timeout=2, retries=0, chunk_size=4,
                ),
            )
        assert "timed out after 2s (killed)" in str(err.value)


class TestRetryBackoff:
    def test_exhaustion_reports_the_backoff_schedule(self, tmp_path):
        with pytest.raises(RuntimeError) as err:
            run_scenario(
                SCENARIO, trials=2, seed=3,
                backend=ShardedBackend(
                    1, workdir=tmp_path / "work",
                    env={"REPRO_CHAOS": "crash-start"},
                    retries=1, chunk_size=2, backoff_base=0.05,
                ),
            )
        message = str(err.value)
        assert "backoff schedule" in message
        # Two retries were scheduled (attempts 1 and 2 both crashed).
        schedule_line = next(
            line for line in message.splitlines()
            if "backoff schedule" in line
        )
        assert schedule_line.count("s") >= 2

    def test_backoff_can_be_disabled(self, tmp_path):
        with pytest.raises(RuntimeError) as err:
            run_scenario(
                SCENARIO, trials=2, seed=3,
                backend=ShardedBackend(
                    1, workdir=tmp_path / "work",
                    env={"REPRO_CHAOS": "crash-start"},
                    retries=1, chunk_size=2, retry_backoff=False,
                ),
            )
        message = str(err.value)
        assert "retry budget exhausted" in message
        assert "backoff schedule" not in message

    def test_delays_are_capped_exponential_with_deterministic_jitter(self):
        backend = ShardedBackend(1, backoff_base=0.5, backoff_cap=4.0)
        delays = [backend._backoff_delay(7, a) for a in range(1, 7)]
        # Deterministic: same (chunk, attempt) -> same delay.
        assert delays == [backend._backoff_delay(7, a) for a in range(1, 7)]
        # Exponential envelope with up-to-25% jitter, capped at 4s*1.25.
        for attempt, delay in enumerate(delays, start=1):
            base = min(4.0, 0.5 * 2 ** (attempt - 1))
            assert base <= delay <= base * 1.25
        assert max(delays) <= 5.0

    def test_validates_backoff_arguments(self):
        with pytest.raises(ValueError):
            ShardedBackend(1, backoff_base=0.0)
        with pytest.raises(ValueError):
            ShardedBackend(1, backoff_base=2.0, backoff_cap=1.0)
        with pytest.raises(ValueError):
            ShardedBackend(1, heartbeat_interval=0.0)


class TestAdaptiveChunkSizing:
    def test_latency_feedback_shrinks_the_next_lease(self):
        backend = ShardedBackend(2, timeout=None)
        initial = 4
        # No observations yet: stick with the initial carve size.
        assert backend._next_chunk_size(remaining=32, initial=initial) == 4
        backend._observe_latency(elapsed=40.0, recorded=4)  # 10s/trial
        # 5s target / 10s per trial -> single-trial leases.
        assert backend._next_chunk_size(remaining=32, initial=initial) == 1
        # Fast trials grow the lease, but never past initial*4.
        backend._ewma_trial_s = None
        backend._observe_latency(elapsed=0.04, recorded=4)  # 10ms/trial
        assert backend._next_chunk_size(remaining=1000, initial=4) == 16

    def test_fair_share_clamp_near_the_end_of_the_pool(self):
        backend = ShardedBackend(4, timeout=None)
        backend._observe_latency(elapsed=0.04, recorded=4)
        # Only 8 trials left across 4 shards: no lease bigger than 2.
        assert backend._next_chunk_size(remaining=8, initial=4) == 2

    def test_trial_cost_hints_order_the_pending_pool(self, tmp_path):
        from repro.experiments import unregister
        from repro.experiments.registry import scenario as scenario_decorator

        @scenario_decorator(
            "_cost-hinted", title="t", source="s",
            trial_cost=lambda i, params: float(i % 3),
        )
        def _trial(ctx):  # pragma: no cover - never dispatched
            return {"m": 0.0}

        try:
            backend = ShardedBackend(2)
            from repro.experiments.backends import ExecutionPlan
            from repro.experiments.registry import get_scenario

            plan = ExecutionPlan(
                scenario="_cost-hinted", spec=get_scenario("_cost-hinted"),
                trials=6, seed=0, seeds=[0] * 6, params={},
                pending=list(range(6)), cache=None, profile_cache=None,
                record=lambda *a: None,
            )
            ordered = backend._order_pending(plan, range(6))
            assert ordered == [2, 5, 1, 4, 0, 3]
        finally:
            unregister("_cost-hinted")

    def test_broken_cost_hint_degrades_to_index_order(self, tmp_path):
        from repro.experiments import unregister
        from repro.experiments.registry import scenario as scenario_decorator

        @scenario_decorator(
            "_cost-broken", title="t", source="s",
            trial_cost=lambda i, params: 1 / 0,
        )
        def _trial(ctx):  # pragma: no cover - never dispatched
            return {"m": 0.0}

        try:
            backend = ShardedBackend(2)
            from repro.experiments.backends import ExecutionPlan
            from repro.experiments.registry import get_scenario

            plan = ExecutionPlan(
                scenario="_cost-broken", spec=get_scenario("_cost-broken"),
                trials=4, seed=0, seeds=[0] * 4, params={},
                pending=list(range(4)), cache=None, profile_cache=None,
                record=lambda *a: None,
            )
            with pytest.warns(RuntimeWarning, match="trial_cost hint"):
                assert backend._order_pending(plan, range(4)) == [0, 1, 2, 3]
        finally:
            unregister("_cost-broken")


class TestTransportCLIFlags:
    @pytest.mark.parametrize("tail", [
        ["--hosts", "a,b"],
        ["--remote-python", "py3"],
        ["--chaos-seed", "4"],
        ["--transport", "ssh", "--hosts", "a", "--chaos-rate", "0.5"],
    ])
    def test_transport_scoped_flags_require_their_transport(self, tail):
        from repro.cli import main

        argv = ["run", "fig6", "--backend", "sharded"] + tail
        with pytest.raises(SystemExit, match="requires --transport"):
            main(argv)

    def test_scheduler_flags_rejected_outside_sharded_backend(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--backend sharded"):
            main(["run", "fig6", "--transport", "chaos"])

    def test_cli_chaos_transport_end_to_end(self, tmp_path, capsys):
        """The acceptance invocation: a sharded sweep through
        ``--transport chaos`` matches a serial artifact byte-for-byte."""
        from repro.cli import main

        serial_dir = tmp_path / "serial"
        chaos_dir = tmp_path / "chaos"
        assert main([
            "run", SCENARIO, "--trials", "4", "--seed", "3",
            "--out", str(serial_dir), "--quiet",
        ]) == 0
        assert main([
            "run", SCENARIO, "--trials", "4", "--seed", "3",
            "--backend", "sharded", "--shards", "2",
            "--shard-timeout", "6", "--retries", "4",
            "--transport", "chaos", "--chaos-seed", "1",
            "--chaos-rate", "0.9",
            "--heartbeat-interval", "0.2", "--backoff-base", "0.05",
            "--out", str(chaos_dir), "--quiet",
        ]) == 0
        assert (
            (serial_dir / "fig6.json").read_bytes()
            == (chaos_dir / "fig6.json").read_bytes()
        )
