"""Property-style fault schedules: exactly-once under injected chaos.

Each test runs a *real* sharded sweep through :class:`ChaosTransport`
with a seeded random fault schedule (connection refusals, mid-stream
disconnects, stalled I/O, truncated/corrupted streams, slow workers) and
asserts the two invariants the scheduler promises no matter what the
transport does:

* every trial is recorded exactly once (counted in the coordinator
  stream), and
* the merged artifact is byte-identical to a serial run's.

The schedules are random but deterministic in the seed, so a failure
reproduces with the same seed — the same property CI's
``remote-chaos-smoke`` job checks with ``cmp``.
"""

import json
from collections import Counter

import pytest

from repro.experiments import (
    ChaosTransport,
    SerialBackend,
    ShardedBackend,
    run_scenario,
    write_artifact,
)

SCENARIO = "fig6"


def _serial(trials, seed=3):
    return run_scenario(SCENARIO, trials=trials, seed=seed,
                        backend=SerialBackend())


def _stream_counts(path) -> Counter:
    counts = Counter()
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("type") == "trial":
            counts[record["trial_index"]] += 1
    return counts


def _chaos_backend(tmp_path, transport, **overrides):
    kwargs = dict(
        workdir=tmp_path / "work", transport=transport,
        chunk_size=2, retries=4, timeout=6,
        heartbeat_interval=0.2, backoff_base=0.05, backoff_cap=0.5,
    )
    kwargs.update(overrides)
    return ShardedBackend(2, **kwargs)


class TestSeededFaultSchedules:
    @pytest.mark.parametrize("chaos_seed", [1, 7, 23])
    def test_exactly_once_and_byte_identical_under_chaos(
        self, tmp_path, chaos_seed
    ):
        """Random fault schedule -> same bytes as serial, each trial once.

        ``rate=0.9`` with the full mode set makes nearly every launch
        fault; ``max_faults_per_chunk=2`` (the default) keeps the
        schedule within the retry budget by construction.
        """
        trials = 6
        serial = _serial(trials)
        transport = ChaosTransport(seed=chaos_seed, rate=0.9, slow_s=0.2)
        stream = tmp_path / "coordinator.trials.jsonl"
        result = run_scenario(
            SCENARIO, trials=trials, seed=3, stream_path=stream,
            backend=_chaos_backend(tmp_path, transport),
        )
        assert transport.injected, (
            f"seed {chaos_seed} injected no faults at rate=0.9 — "
            "the schedule is not exercising anything"
        )
        assert _stream_counts(stream) == Counter(
            {i: 1 for i in range(trials)}
        )
        a = write_artifact(serial, directory=tmp_path / "a").read_bytes()
        b = write_artifact(result, directory=tmp_path / "b").read_bytes()
        assert a == b

    def test_schedule_is_reproducible_across_runs(self, tmp_path):
        """Same chaos seed twice -> the identical injected-fault log."""
        def _run(workdir):
            transport = ChaosTransport(seed=5, rate=0.9, slow_s=0.2)
            run_scenario(
                SCENARIO, trials=4, seed=3,
                backend=_chaos_backend(workdir, transport),
            )
            return transport.injected

        first = _run(tmp_path / "one")
        second = _run(tmp_path / "two")
        assert first == second
        assert first, "seed 5 injected nothing at rate=0.9"

    def test_scripted_worst_case_one_of_each_fault(self, tmp_path):
        """A scripted plan hits every fault mode once across the sweep."""
        trials = 8
        serial = _serial(trials)
        plan = {
            (0, 1): "refuse",
            (1, 1): "disconnect",
            (2, 1): "stall-io",
            (3, 1): "truncate-stream",
            (0, 2): "corrupt-stream",
            (1, 2): "slow",
        }
        transport = ChaosTransport(seed=0, rate=0.0, plan=plan, slow_s=0.2)
        result = run_scenario(
            SCENARIO, trials=trials, seed=3,
            backend=_chaos_backend(tmp_path, transport, timeout=4),
        )
        fired = {(c, a, m) for c, a, m in transport.injected}
        assert {(c, a, plan[(c, a)]) for (c, a) in plan} <= fired
        a = write_artifact(serial, directory=tmp_path / "a").read_bytes()
        b = write_artifact(result, directory=tmp_path / "b").read_bytes()
        assert a == b


class TestGracefulDegradation:
    def test_all_virtual_hosts_quarantined_falls_back_to_local(
        self, tmp_path
    ):
        """Refuse every launch until both virtual hosts are quarantined:
        the scheduler must degrade to local execution and still finish
        with a serial-identical artifact."""
        serial = _serial(4)
        transport = ChaosTransport(
            seed=0, rate=1.0, modes=("refuse",),
            hosts=2, quarantine_after=1,
        )
        with pytest.warns(RuntimeWarning, match="degrading to local"):
            result = run_scenario(
                SCENARIO, trials=4, seed=3,
                backend=_chaos_backend(tmp_path, transport),
            )
        assert not transport.available()
        assert all(m == "refuse" for _, _, m in transport.injected)
        assert result.to_json() == serial.to_json()

    def test_degraded_run_still_counts_every_trial_once(self, tmp_path):
        transport = ChaosTransport(
            seed=3, rate=1.0, modes=("refuse",),
            hosts=1, quarantine_after=1,
        )
        stream = tmp_path / "coordinator.trials.jsonl"
        with pytest.warns(RuntimeWarning, match="degrading to local"):
            run_scenario(
                SCENARIO, trials=4, seed=3, stream_path=stream,
                backend=_chaos_backend(tmp_path, transport),
            )
        assert _stream_counts(stream) == Counter({i: 1 for i in range(4)})
