"""Transport layer: host parsing, health/quarantine, chaos schedules,
the CLI transport factory, and a real sweep over a loopback "ssh" pool.

The SSH tests never touch the network: ``ssh``/``scp`` are replaced by
tiny shell shims that execute the remote command locally and ``cp`` the
"remote" stream back — which exercises the full dispatch/fetch/harvest
path (command quoting, env shipping, stream sync) against the same
byte-identity contract as every other backend.
"""

import json
import stat
import sys

import pytest

from repro.experiments import (
    ChaosTransport,
    SerialBackend,
    ShardedBackend,
    SSHTransport,
    TransportError,
    run_scenario,
    write_artifact,
)
from repro.experiments.transport import (
    CHAOS_FAULTS,
    HostHealth,
    HostSpec,
    LocalSubprocessTransport,
    WorkerSpec,
    build_transport,
    chunk_worker_command,
    parse_hosts,
)

SCENARIO = "fig6"


def _serial(trials=4, seed=3):
    return run_scenario(SCENARIO, trials=trials, seed=seed,
                        backend=SerialBackend())


class TestParseHosts:
    def test_names_slots_and_users(self):
        assert parse_hosts("alpha,beta:4,user@gamma") == [
            HostSpec("alpha", 1), HostSpec("beta", 4),
            HostSpec("user@gamma", 1),
        ]

    def test_whitespace_and_empty_entries_tolerated(self):
        assert parse_hosts(" alpha , beta:2 ,") == [
            HostSpec("alpha", 1), HostSpec("beta", 2),
        ]

    @pytest.mark.parametrize("text", [
        "", ",", "alpha:0", "alpha:-1", "alpha:x", ":2", "alpha,alpha",
    ])
    def test_rejects_malformed_specs(self, text):
        with pytest.raises(ValueError):
            parse_hosts(text)


class TestHostHealth:
    def test_quarantine_after_consecutive_failures(self):
        health = HostHealth(["a", "b"], quarantine_after=2)
        assert health.record_failure("a") is False
        assert health.record_failure("a") is True  # the quarantining one
        assert health.healthy() == ["b"]
        assert health.available
        # Already-quarantined hosts report False (no double warning).
        assert health.record_failure("a") is False

    def test_success_resets_the_streak(self):
        health = HostHealth(["a"], quarantine_after=2)
        health.record_failure("a")
        health.record_success("a")
        assert health.record_failure("a") is False
        assert health.available

    def test_all_quarantined_means_unavailable(self):
        health = HostHealth(["a"], quarantine_after=1)
        health.record_failure("a")
        assert not health.available
        assert health.healthy() == []

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            HostHealth(["a"], quarantine_after=0)


class TestWorkerCommand:
    def _spec(self, **overrides):
        base = dict(
            scenario="fig6", chunk_id=7, indices=[2, 5], trials=8, seed=3,
            params={}, workdir=None, attempt=2,
        )
        base.update(overrides)
        import pathlib
        base["workdir"] = pathlib.Path("/tmp/w")
        return WorkerSpec(**base)

    def test_command_is_the_public_cli(self):
        command = chunk_worker_command("pyX", self._spec(), "/out")
        assert command[:4] == ["pyX", "-m", "repro", "run"]
        assert "--chunk" in command and "7" in command
        assert "--trial-indices" in command
        assert command[command.index("--trial-indices") + 1] == "2,5"
        assert "--params-json" not in command
        assert "--heartbeat-interval" not in command

    def test_params_ship_as_json(self):
        spec = self._spec(params={"t_rh_grid": [1000, 2000], "mode": "x"})
        command = chunk_worker_command("py", spec, "/out")
        payload = command[command.index("--params-json") + 1]
        assert json.loads(payload) == {"t_rh_grid": [1000, 2000], "mode": "x"}

    def test_heartbeat_flag_forwarded(self):
        spec = self._spec(heartbeat_interval=0.25)
        command = chunk_worker_command("py", spec, "/out")
        assert command[command.index("--heartbeat-interval") + 1] == "0.25"

    def test_stream_and_log_names_are_attempt_scoped(self):
        spec = self._spec()
        assert spec.stream_name == "fig6.chunk-0007.trials.jsonl"
        assert spec.log_name == "fig6.chunk-0007.attempt-2.log"


class TestChaosSchedule:
    def test_decide_is_pure_in_seed_chunk_attempt(self):
        first = ChaosTransport(seed=11, rate=0.8)
        second = ChaosTransport(seed=11, rate=0.8)
        schedule = [
            (c, a, first.decide(c, a)) for c in range(6) for a in (1, 2)
        ]
        assert schedule == [
            (c, a, second.decide(c, a)) for c in range(6) for a in (1, 2)
        ]
        assert any(mode for _, _, mode in schedule), (
            "rate=0.8 over 12 draws injected nothing — seeding is broken"
        )

    def test_different_seeds_differ(self):
        draws_a = [ChaosTransport(seed=1, rate=0.5).decide(c, 1)
                   for c in range(32)]
        draws_b = [ChaosTransport(seed=2, rate=0.5).decide(c, 1)
                   for c in range(32)]
        assert draws_a != draws_b

    def test_plan_overrides_the_seeded_draw(self):
        transport = ChaosTransport(seed=0, rate=0.0,
                                   plan={(3, 1): "disconnect"})
        assert transport.decide(3, 1) == "disconnect"
        assert transport.decide(3, 2) is None

    def test_max_faults_per_chunk_caps_injections(self):
        transport = ChaosTransport(seed=0, rate=1.0, max_faults_per_chunk=2)
        # decide() itself doesn't count — start() does — so simulate the
        # bookkeeping the way the transport records it.
        fired = 0
        for attempt in range(1, 6):
            mode = transport.decide(0, attempt)
            if mode is not None:
                transport._faults_per_chunk[0] = (
                    transport._faults_per_chunk.get(0, 0) + 1
                )
                fired += 1
        assert fired == 2

    def test_rejects_unknown_modes_and_bad_rate(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosTransport(modes=("refuse", "gremlins"))
        with pytest.raises(ValueError, match="rate"):
            ChaosTransport(rate=1.5)

    def test_refusal_raises_transport_error_and_burns_virtual_host(self):
        transport = ChaosTransport(
            seed=0, rate=1.0, modes=("refuse",), hosts=1, quarantine_after=1,
        )
        spec = WorkerSpec(
            scenario="fig6", chunk_id=0, indices=[0], trials=1, seed=3,
            params={}, workdir=None, attempt=1,
        )
        with pytest.raises(TransportError):
            transport.start(spec)
        assert not transport.available()
        assert transport.injected == [(0, 1, "refuse")]


class TestBuildTransport:
    def test_local_and_none_mean_scheduler_default(self):
        assert build_transport(None) is None
        assert build_transport("local") is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            build_transport("carrier-pigeon")

    def test_ssh_requires_hosts(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOSTS", raising=False)
        with pytest.raises(ValueError, match="--hosts"):
            build_transport("ssh")

    def test_ssh_hosts_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOSTS", "alpha,beta:2")
        transport = build_transport("ssh", remote_python="py3",
                                    remote_root="/scratch")
        assert isinstance(transport, SSHTransport)
        assert [h.name for h in transport.hosts] == ["alpha", "beta"]
        assert transport.python == "py3"
        assert transport.remote_root == "/scratch"

    def test_chaos_builds_over_local_with_mode_subset(self):
        transport = build_transport(
            "chaos", chaos_seed=9, chaos_rate=0.2,
            chaos_modes="refuse, slow", chaos_hosts=3,
        )
        assert isinstance(transport, ChaosTransport)
        assert transport.seed == 9
        assert transport.modes == ("refuse", "slow")
        assert isinstance(transport.inner, LocalSubprocessTransport)
        assert transport.health is not None
        assert len(transport.health.healthy()) == 3

    def test_chaos_default_modes_are_the_full_set(self):
        assert build_transport("chaos").modes == CHAOS_FAULTS


def _write_shim(path, body):
    path.write_text("#!/bin/sh\n" + body)
    path.chmod(path.stat().st_mode | stat.S_IEXEC)
    return str(path)


@pytest.fixture
def loopback(tmp_path):
    """Fake ssh/scp pair that runs the remote command locally."""
    ssh = _write_shim(tmp_path / "fake-ssh", (
        'while [ "$1" != "${1#-}" ]; do\n'
        '  case "$1" in -o) shift 2 ;; *) shift ;; esac\n'
        'done\n'
        'host="$1"; shift\n'
        'exec sh -c "$*"\n'
    ))
    scp = _write_shim(tmp_path / "fake-scp", (
        'while [ "$1" != "${1#-}" ]; do shift; done\n'
        'src="${1#*:}"; dst="$2"\n'
        '[ -f "$src" ] || exit 0\n'
        'exec cp "$src" "$dst"\n'
    ))
    return ssh, scp


class TestSSHLoopback:
    def test_sweep_over_loopback_hosts_matches_serial(
        self, tmp_path, loopback
    ):
        ssh, scp = loopback
        import os

        transport = SSHTransport(
            "nodeA,nodeB",
            python=sys.executable,
            remote_root=str(tmp_path / "remote"),
            remote_pythonpath=os.environ.get("PYTHONPATH", "src"),
            ssh_command=(ssh,),
            scp_command=(scp,),
            ssh_options=(),
        )
        serial = _serial()
        result = run_scenario(
            SCENARIO, trials=4, seed=3,
            backend=ShardedBackend(
                2, workdir=tmp_path / "work", transport=transport,
                chunk_size=2,
            ),
        )
        a = write_artifact(serial, directory=tmp_path / "a").read_bytes()
        b = write_artifact(result, directory=tmp_path / "b").read_bytes()
        assert a == b
        # The remote-side streams really were produced off-workdir and
        # fetched back (the shim ran them under remote_root).
        remote_streams = list((tmp_path / "remote").rglob("*.trials.jsonl"))
        assert remote_streams, "workers never ran under the remote root"

    def test_dead_host_pool_quarantines_then_degrades_to_local(
        self, tmp_path
    ):
        dead = _write_shim(tmp_path / "dead-ssh", (
            'echo "ssh: connect to host refused" >&2\n'
            'exit 255\n'
        ))
        transport = SSHTransport(
            "ghost",
            ssh_command=(dead,),
            ssh_options=(),
            quarantine_after=1,
        )
        serial = _serial()
        with pytest.warns(RuntimeWarning) as warned:
            result = run_scenario(
                SCENARIO, trials=4, seed=3,
                backend=ShardedBackend(
                    1, workdir=tmp_path / "work", transport=transport,
                    chunk_size=2, retries=2,
                ),
            )
        messages = [str(w.message) for w in warned]
        assert any("quarantined" in m for m in messages)
        assert any("degrading to local" in m for m in messages)
        assert not transport.available()
        assert result.to_json() == serial.to_json()

    def test_degradation_can_be_disabled(self, tmp_path):
        dead = _write_shim(tmp_path / "dead-ssh", "exit 255\n")
        transport = SSHTransport(
            "ghost", ssh_command=(dead,), ssh_options=(),
            quarantine_after=1,
        )
        with pytest.warns(RuntimeWarning):
            with pytest.raises(RuntimeError, match="local fallback"):
                run_scenario(
                    SCENARIO, trials=2, seed=3,
                    backend=ShardedBackend(
                        1, workdir=tmp_path / "work", transport=transport,
                        chunk_size=2, retries=2, fallback_local=False,
                    ),
                )
