"""Attack-profile disk cache: cached vs fresh profiles are identical."""

import numpy as np
import pytest

from repro.attacks.bfa import BfaConfig
from repro.attacks.profile import profile_vulnerable_bits
from repro.experiments import ProfileCache
from repro.experiments.cache import default_profile_root
from repro.presets import preset_spec

SPEC = preset_spec(
    "resnet20_cifar", width_scale=0.25, n_train=192, n_test=96, epochs=2,
    min_accuracy=0.0,
)
ATTACK_CONFIG = {"rounds": 2, "config": {"max_iterations": 3}, "extra": {}}


def _compute_profile(qmodel, dataset):
    rng = np.random.default_rng(5)
    x, y = dataset.attack_batch(48, rng)
    return profile_vulnerable_bits(
        qmodel, x, y, rounds=2,
        config=BfaConfig(max_iterations=3, exact_eval_top=2),
    )


class TestProfileCache:
    def test_cached_equals_fresh(self, tmp_path, quantized_factory,
                                 tiny_dataset):
        cache = ProfileCache(tmp_path)
        fresh = _compute_profile(quantized_factory(), tiny_dataset)
        stored = cache.load(
            SPEC, ATTACK_CONFIG,
            lambda: _compute_profile(quantized_factory(), tiny_dataset),
        )
        assert cache.misses == 1
        assert stored.rounds == fresh.rounds
        assert stored.all_bits == fresh.all_bits

        def explode():
            raise AssertionError("cache hit must not recompute")

        warm = ProfileCache(tmp_path).load(SPEC, ATTACK_CONFIG, explode)
        assert warm.rounds == fresh.rounds
        assert warm.bits_up_to_round(1) == fresh.bits_up_to_round(1)

    def test_memo_hit_in_process(self, tmp_path, quantized_factory,
                                 tiny_dataset):
        cache = ProfileCache(tmp_path)
        cache.load(
            SPEC, ATTACK_CONFIG,
            lambda: _compute_profile(quantized_factory(), tiny_dataset),
        )
        cache.load(SPEC, ATTACK_CONFIG, lambda: 1 / 0)
        assert cache.hits == 1 and cache.misses == 1

    def test_key_distinguishes_attack_configs(self, tmp_path):
        cache = ProfileCache(tmp_path)
        other = dict(ATTACK_CONFIG, rounds=3)
        assert cache.key_for(SPEC, ATTACK_CONFIG) != cache.key_for(SPEC, other)
        assert (
            cache.path_for(SPEC, ATTACK_CONFIG)
            != cache.path_for(SPEC, other)
        )

    def test_empty_profile_round_trips(self, tmp_path):
        from repro.attacks.profile import ProfileResult

        cache = ProfileCache(tmp_path)
        stored = cache.load(SPEC, ATTACK_CONFIG, ProfileResult)
        assert stored.rounds == []
        warm = ProfileCache(tmp_path).load(SPEC, ATTACK_CONFIG, lambda: 1 / 0)
        assert warm.rounds == []

    def test_clear(self, tmp_path, quantized_factory, tiny_dataset):
        cache = ProfileCache(tmp_path)
        cache.load(
            SPEC, ATTACK_CONFIG,
            lambda: _compute_profile(quantized_factory(), tiny_dataset),
        )
        assert len(cache.entries()) == 1
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_default_root_nests_under_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_profile_root() == tmp_path / "profiles"

    def test_profile_dir_env_pins_root_exactly(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path / "pinned"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ignored"))
        assert default_profile_root() == tmp_path / "pinned"


class TestFastScoringAudit:
    """A cached profile computed with the fast scorer must replay
    identically under the legacy scorer — and the cache key must
    distinguish the two configs, so nothing silently mixes them if the
    scorers ever diverge."""

    def _profile(self, qmodel, dataset, fast_scoring):
        rng = np.random.default_rng(5)
        x, y = dataset.attack_batch(48, rng)
        return profile_vulnerable_bits(
            qmodel, x, y, rounds=2,
            config=BfaConfig(
                max_iterations=3, exact_eval_top=2, fast_scoring=fast_scoring,
            ),
        )

    def test_fast_profile_replays_identically_under_legacy_scorer(
        self, quantized_factory, tiny_dataset
    ):
        fast = self._profile(quantized_factory(), tiny_dataset, True)
        slow = self._profile(quantized_factory(), tiny_dataset, False)
        assert fast.rounds == slow.rounds
        assert fast.all_bits == slow.all_bits

    def test_cache_key_distinguishes_scoring_modes(self, tmp_path):
        import dataclasses

        cache = ProfileCache(tmp_path)

        def config_for(fast_scoring):
            return {
                "rounds": 2,
                "config": dataclasses.asdict(
                    BfaConfig(max_iterations=3, fast_scoring=fast_scoring)
                ),
                "extra": {},
            }

        assert (
            cache.key_for(SPEC, config_for(True))
            != cache.key_for(SPEC, config_for(False))
        )


class TestTrialContextIntegration:
    def test_context_uses_provided_cache_memo(self, tmp_path, monkeypatch):
        """run_scenario threads one ProfileCache through all trials, so
        repeated ctx.profile calls must hit its in-process memo."""
        from repro.attacks import profile as profile_module
        from repro.attacks.profile import ProfileResult
        from repro.experiments import TrialContext

        calls = []

        def fake_profile(qmodel, x, y, rounds, config=None):
            calls.append(rounds)
            return ProfileResult()

        monkeypatch.setattr(
            profile_module, "profile_vulnerable_bits", fake_profile
        )
        cache = ProfileCache(tmp_path)
        ctx = TrialContext(
            scenario="t", trial_index=0, seed=0, profile_cache=cache
        )
        kwargs = dict(rounds=2, extra_key={"seed": 0})
        ctx.profile("resnet20_cifar", None, None, None, **kwargs)
        ctx.profile("resnet20_cifar", None, None, None, **kwargs)
        assert calls == [2]  # second call served from the shared memo
        assert cache.hits == 1 and cache.misses == 1
