"""The ``sweep-refresh-trh`` scenario and the fig6 ``timing_check`` knob."""

import pytest

from repro.experiments import (
    SerialBackend,
    ShardedBackend,
    get_scenario,
    run_scenario,
    write_artifact,
)

FAST_GRID = {
    "t_ref_grid": (64.0,),
    "t_rh_grid": (1000,),
    "budget_grid": (0.5, 1.0),
    "n_targets": 32,
}


class TestRegistration:
    def test_registered_with_tags_and_defaults(self):
        spec = get_scenario("sweep-refresh-trh")
        assert spec.deterministic
        assert {"sweep", "dram"} <= set(spec.tags)
        assert spec.default_trials == 2
        assert spec.check_fn is not None
        assert spec.report_fn is not None


class TestScenario:
    def test_trial_metrics_and_check(self):
        result = run_scenario(
            "sweep-refresh-trh", trials=1, seed=0, params=FAST_GRID
        )
        assert result.metric("timing_violations") == 0.0
        assert result.metric("commands_checked") > 0.0
        for budget in ("0.5", "1"):
            key = f"64x1000x{budget}"
            assert result.metric(f"latency_ms[{key}]") > 0.0
            assert result.metric(f"swaps[{key}]") > 0.0
        # Half the budget, same swap demand: more of each T_ref is spent.
        assert (
            result.metric("latency_ms[64x1000x0.5]")
            > result.metric("latency_ms[64x1000x1]")
        )
        get_scenario("sweep-refresh-trh").run_checks(result)

    def test_shrinking_refresh_interval_raises_overhead(self):
        result = run_scenario(
            "sweep-refresh-trh", trials=1, seed=0,
            params={**FAST_GRID, "t_ref_grid": (32.0, 64.0)},
        )
        assert (
            result.metric("refresh_overhead[32]")
            == pytest.approx(2 * result.metric("refresh_overhead[64]"))
        )
        get_scenario("sweep-refresh-trh").run_checks(result)

    def test_report_renders(self):
        result = run_scenario(
            "sweep-refresh-trh", trials=1, seed=0, params=FAST_GRID
        )
        report = get_scenario("sweep-refresh-trh").report_fn(result)
        assert "timing audit: 0 violation(s)" in report
        assert "refresh ovh" in report

    def test_cli_string_grids_coerce(self):
        result = run_scenario(
            "sweep-refresh-trh", trials=1, seed=0,
            params={
                "t_ref_grid": "64", "t_rh_grid": "1000",
                "budget_grid": "1.0", "n_targets": 32,
            },
        )
        assert result.metric("latency_ms[64x1000x1]") > 0.0


class TestCrossBackendDeterminism:
    def test_serial_and_sharded_artifacts_are_byte_identical(self, tmp_path):
        serial = run_scenario(
            "sweep-refresh-trh", trials=2, seed=5, params=FAST_GRID,
            backend=SerialBackend(),
        )
        sharded = run_scenario(
            "sweep-refresh-trh", trials=2, seed=5, params=FAST_GRID,
            backend=ShardedBackend(2, workdir=tmp_path / "shards"),
        )
        serial_bytes = write_artifact(
            serial, directory=tmp_path / "serial"
        ).read_bytes()
        sharded_bytes = write_artifact(
            sharded, directory=tmp_path / "sharded"
        ).read_bytes()
        assert serial_bytes == sharded_bytes


class TestFig6TimingCheck:
    def test_off_by_default(self):
        result = run_scenario("fig6", trials=1, seed=0)
        assert "timing_violations" not in result.metrics
        get_scenario("fig6").run_checks(result)

    @pytest.mark.parametrize("mode", ["strict", "audit"])
    def test_checked_trial_is_clean(self, mode):
        result = run_scenario(
            "fig6", trials=1, seed=0, params={"timing_check": mode}
        )
        assert result.metric("timing_violations") == 0.0
        get_scenario("fig6").run_checks(result)
