"""Preset disk cache: miss trains and stores, hit skips training."""

import numpy as np
import pytest

from repro.experiments import PresetCache
from repro.nn import Tensor
from repro.presets import preset_spec

# Throwaway recipe: small enough to train in a couple of seconds, with the
# accuracy floor disabled (two epochs do not have to clear 60%).
TINY = dict(
    width_scale=0.25, n_train=192, n_test=96, epochs=2, min_accuracy=0.0
)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("preset-cache")


@pytest.fixture(scope="module")
def first_load(cache_dir):
    cache = PresetCache(cache_dir)
    preset = cache.load("resnet20_cifar", **TINY)
    return cache, preset


class TestMissThenHit:
    def test_miss_trains_and_stores(self, first_load, cache_dir):
        cache, preset = first_load
        assert cache.misses == 1
        spec = preset_spec("resnet20_cifar", **TINY)
        path = cache.path_for(spec)
        assert path.exists()
        assert path.parent == cache_dir

    def test_fresh_cache_hits_without_training(self, first_load, cache_dir):
        _, trained = first_load
        spec = preset_spec("resnet20_cifar", **TINY)
        warm_cache = PresetCache(cache_dir)
        before = warm_cache.path_for(spec).stat().st_mtime_ns
        warm = warm_cache.load("resnet20_cifar", **TINY)
        assert warm_cache.hits == 1 and warm_cache.misses == 0
        # The stored file was read, not rewritten.
        assert warm_cache.path_for(spec).stat().st_mtime_ns == before
        # Round-trip fidelity: identical weights, history, accuracy.
        assert set(warm.state) == set(trained.state)
        for key in trained.state:
            np.testing.assert_array_equal(warm.state[key], trained.state[key])
        assert warm.history == trained.history
        assert warm.clean_accuracy == trained.clean_accuracy

    def test_warm_model_predicts_identically(self, first_load, cache_dir):
        _, trained = first_load
        warm = PresetCache(cache_dir).load("resnet20_cifar", **TINY)
        x = Tensor(trained.dataset.x_test[:16])
        out_a = trained.fresh_model()(x)
        out_b = warm.fresh_model()(x)
        np.testing.assert_array_equal(np.asarray(out_a.data),
                                      np.asarray(out_b.data))

    def test_in_process_memo_returns_same_object(self, first_load):
        cache, preset = first_load
        assert cache.load("resnet20_cifar", **TINY) is preset

    def test_different_recipe_is_different_entry(self, first_load):
        cache, _ = first_load
        a = preset_spec("resnet20_cifar", **TINY)
        b = preset_spec("resnet20_cifar", **{**TINY, "epochs": 3})
        assert cache.key_for(a) != cache.key_for(b)
        assert cache.path_for(a) != cache.path_for(b)

    def test_clear_empties_the_root(self, cache_dir, first_load):
        # Run last in the class: wipes what the earlier tests stored.
        cache = PresetCache(cache_dir)
        assert cache.entries()
        removed = cache.clear()
        assert removed >= 1
        assert cache.entries() == []
