"""CLI surface and JSON artifacts (cheap scenarios only)."""

import json

import pytest

from repro.cli import _parse_params, main
from repro.experiments import load_artifact, run_scenario, write_artifact
from repro.experiments.artifacts import default_results_dir


class TestParamParsing:
    def test_coercion(self):
        params = _parse_params(["trials=3", "rate=0.5", "model=vgg11_cifar"])
        assert params == {"trials": 3, "rate": 0.5, "model": "vgg11_cifar"}

    def test_malformed_pair_exits(self):
        with pytest.raises(SystemExit):
            _parse_params(["no-equals-sign"])


class TestListCommand:
    def test_lists_at_least_eight_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l and not l.startswith("\n")]
        assert sum(1 for l in lines if l.split() and "scenarios;" not in l) >= 8
        assert "fig8a" in out and "table3" in out

    def test_tag_filter(self, capsys):
        assert main(["list", "--tag", "sweep"]) == 0
        out = capsys.readouterr().out
        assert "sweep-defense-grid" in out
        assert "fig1a" not in out


class TestRunCommand:
    def test_run_writes_artifact(self, tmp_path, capsys):
        code = main([
            "run", "fig1a", "--trials", "2", "--out", str(tmp_path), "--quiet",
        ])
        assert code == 0
        artifact = json.loads((tmp_path / "fig1a.json").read_text())
        assert artifact["scenario"] == "fig1a"
        assert artifact["trials"] == 2
        assert artifact["check_error"] is None
        ratio = artifact["metrics"]["ratio_ddr3_new_over_lpddr4_new"]
        assert 4.0 < ratio["mean"] < 5.0
        assert len(ratio["values"]) == 2

    def test_unknown_scenario_fails_fast(self, tmp_path, capsys):
        assert main(["run", "not-a-scenario", "--out", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "fig8a" in err


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        result = run_scenario("fig1a", trials=1)
        path = write_artifact(result, directory=tmp_path)
        assert path.name == "fig1a.json"
        loaded = load_artifact(path)
        assert loaded == result.to_json()

    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "override"))
        assert default_results_dir() == tmp_path / "override"
