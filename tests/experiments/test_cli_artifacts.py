"""CLI surface and JSON artifacts (cheap scenarios only)."""

import json

import pytest

from repro.cli import _parse_params, main
from repro.experiments import load_artifact, run_scenario, write_artifact
from repro.experiments.artifacts import default_results_dir


class TestParamParsing:
    def test_coercion(self):
        params = _parse_params(["trials=3", "rate=0.5", "model=vgg11_cifar"])
        assert params == {"trials": 3, "rate": 0.5, "model": "vgg11_cifar"}

    def test_malformed_pair_exits(self):
        with pytest.raises(SystemExit):
            _parse_params(["no-equals-sign"])


class TestListCommand:
    def test_lists_at_least_eight_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l and not l.startswith("\n")]
        assert sum(1 for l in lines if l.split() and "scenarios;" not in l) >= 8
        assert "fig8a" in out and "table3" in out

    def test_tag_filter(self, capsys):
        assert main(["list", "--tag", "sweep"]) == 0
        out = capsys.readouterr().out
        assert "sweep-defense-grid" in out
        assert "fig1a" not in out


class TestRunCommand:
    def test_run_writes_artifact(self, tmp_path, capsys):
        code = main([
            "run", "fig1a", "--trials", "2", "--out", str(tmp_path), "--quiet",
        ])
        assert code == 0
        artifact = json.loads((tmp_path / "fig1a.json").read_text())
        assert artifact["scenario"] == "fig1a"
        assert artifact["trials"] == 2
        assert artifact["check_error"] is None
        ratio = artifact["metrics"]["ratio_ddr3_new_over_lpddr4_new"]
        assert 4.0 < ratio["mean"] < 5.0
        assert len(ratio["values"]) == 2

    def test_unknown_scenario_fails_fast(self, tmp_path, capsys):
        assert main(["run", "not-a-scenario", "--out", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "fig8a" in err


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        result = run_scenario("fig1a", trials=1)
        path = write_artifact(result, directory=tmp_path)
        assert path.name == "fig1a.json"
        loaded = load_artifact(path)
        assert loaded == result.to_json()

    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "override"))
        assert default_results_dir() == tmp_path / "override"


class TestAtomicArtifacts:
    """Artifact writes go through tmp-file + os.replace: no reader (or
    crash) can ever observe a truncated JSON document."""

    def test_concurrent_writers_never_expose_partial_json(self, tmp_path):
        import threading

        from repro.experiments.artifacts import _atomic_write_text

        path = tmp_path / "artifact.json"
        payloads = [
            json.dumps({"writer": w, "blob": "x" * 20000}) + "\n"
            for w in range(4)
        ]
        _atomic_write_text(path, payloads[0])
        stop = threading.Event()
        bad: list[str] = []

        def reader():
            while not stop.is_set():
                try:
                    json.loads(path.read_text())
                except json.JSONDecodeError as exc:  # pragma: no cover
                    bad.append(str(exc))

        def writer(payload: str):
            for _ in range(40):
                _atomic_write_text(path, payload)

        threads = [threading.Thread(target=reader)] + [
            threading.Thread(target=writer, args=(p,)) for p in payloads
        ]
        for t in threads:
            t.start()
        for t in threads[1:]:
            t.join()
        stop.set()
        threads[0].join()
        assert not bad, f"reader saw partial JSON: {bad[0]}"
        assert json.loads(path.read_text())["blob"].startswith("x")
        # No tmp litter left behind.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_write_preserves_existing_artifact(self, tmp_path,
                                                      monkeypatch):
        import os as _os

        from repro.experiments import artifacts

        result = run_scenario("fig1a", trials=1)
        path = write_artifact(result, directory=tmp_path)
        before = path.read_bytes()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(artifacts.os, "replace", boom)
        with pytest.raises(OSError, match="disk full"):
            write_artifact(result, directory=tmp_path)
        monkeypatch.undo()
        assert path.read_bytes() == before  # old artifact untouched
        assert list(tmp_path.glob("*.tmp")) == []  # tmp cleaned up


class TestSchedulerFlags:
    """CLI validation of the sharded-scheduler and chunk-worker flags."""

    @pytest.mark.parametrize("argv", [
        ["run", "fig1a", "--shards", "2"],
        ["run", "fig1a", "--shard-timeout", "5"],
        ["run", "fig1a", "--retries", "2"],
        ["run", "fig1a", "--chunk-size", "2"],
        ["run", "fig1a", "--backend", "process", "--shards", "2"],
    ])
    def test_scheduler_flags_require_sharded_backend(self, argv, tmp_path):
        with pytest.raises(SystemExit):
            main(argv + ["--out", str(tmp_path)])

    @pytest.mark.parametrize("argv", [
        ["run", "fig1a", "--chunk", "0"],
        ["run", "fig1a", "--trial-indices", "0,1"],
        ["run", "fig1a", "--chunk", "0", "--trial-indices", "0,1",
         "--shard", "0/2"],
        ["run", "fig1a", "--chunk", "0", "--trial-indices", "0,1",
         "--backend", "serial"],
        ["run", "fig1a", "--chunk", "0", "--trial-indices", "0,1",
         "--retries", "1"],
        ["run", "fig1a", "--chunk", "0", "--trial-indices", "nope"],
        ["run", "fig1a", "--chunk", "0", "--trial-indices", ","],
    ])
    def test_chunk_worker_flag_validation(self, argv, tmp_path):
        with pytest.raises(SystemExit):
            main(argv + ["--out", str(tmp_path)])

    def test_chunk_worker_streams_and_merge_discovers_chunks(
        self, tmp_path, capsys
    ):
        for chunk_id, indices in enumerate(["0,1", "2,3"]):
            code = main([
                "run", "fig1a", "--trials", "4", "--seed", "2",
                "--chunk", str(chunk_id), "--trial-indices", indices,
                "--out", str(tmp_path), "--quiet",
            ])
            assert code == 0
        assert len(list(tmp_path.glob("fig1a.chunk-*.trials.jsonl"))) == 2
        assert main([
            "merge", "fig1a", "--out", str(tmp_path), "--quiet",
        ]) == 0
        merged = json.loads((tmp_path / "fig1a.json").read_text())
        serial_dir = tmp_path / "serial"
        assert main([
            "run", "fig1a", "--trials", "4", "--seed", "2",
            "--out", str(serial_dir), "--quiet",
        ]) == 0
        serial = json.loads((serial_dir / "fig1a.json").read_text())
        assert merged == serial


class TestTraceCommand:
    def test_record_replay_show_round_trip(self, tmp_path, capsys):
        out = tmp_path / "hammer.jsonl"
        assert main([
            "trace", "record", "--workload", "hammer-window",
            "--out", str(out), "--check", "strict",
        ]) == 0
        assert "recorded hammer-window" in capsys.readouterr().out
        assert main(["trace", "replay", str(out), "--check", "strict"]) == 0
        assert "byte-identically" in capsys.readouterr().out
        assert main(["trace", "show", str(out), "--limit", "3"]) == 0
        shown = capsys.readouterr().out
        assert "format 1" in shown and "stats:" in shown

    def test_unknown_workload_exits_two(self, tmp_path, capsys):
        assert main([
            "trace", "record", "--workload", "nope",
            "--out", str(tmp_path / "x.jsonl"),
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "hammer-window" in err

    def test_missing_trace_file_exits_two(self, tmp_path, capsys):
        assert main(["trace", "replay", str(tmp_path / "gone.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: no such trace file")
