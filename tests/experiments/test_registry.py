"""Registry resolution: built-in catalogue, lookup errors, registration."""

import pytest

from repro.experiments import (
    Scenario,
    get_scenario,
    iter_scenarios,
    register,
    scenario_names,
    unregister,
)


class TestBuiltinCatalogue:
    def test_all_paper_scenarios_registered(self):
        names = scenario_names()
        for expected in (
            "fig1a", "fig1b", "fig6", "fig8a", "fig8b",
            "fig9a", "fig9b", "fig9c",
            "table2", "table3", "power", "ablation", "semi-whitebox",
            "sweep-defense-grid", "sweep-hammer-rate",
            "sweep-refresh-trh",
        ):
            assert expected in names

    def test_catalogue_is_at_least_eight(self):
        assert len(scenario_names()) >= 8

    def test_get_scenario_resolves(self):
        spec = get_scenario("fig8a")
        assert spec.name == "fig8a"
        assert spec.deterministic
        assert callable(spec.trial_fn)

    def test_unknown_name_lists_catalogue(self):
        with pytest.raises(KeyError, match="fig8a"):
            get_scenario("fig99z")

    def test_preset_scenarios_declare_presets(self):
        assert get_scenario("fig9a").presets == ("vgg11_cifar",)
        assert get_scenario("table3").presets == ("resnet20_cifar",)

    def test_tag_filter(self):
        sweeps = [s.name for s in iter_scenarios(tag="sweep")]
        assert "sweep-defense-grid" in sweeps
        assert "fig1a" not in sweeps


class TestRegistration:
    def test_register_and_unregister(self):
        spec = Scenario(name="toy-registry-test", trial_fn=lambda ctx: {})
        register(spec)
        try:
            assert get_scenario("toy-registry-test") is spec
        finally:
            unregister("toy-registry-test")
        with pytest.raises(KeyError):
            get_scenario("toy-registry-test")

    def test_duplicate_name_rejected(self):
        spec = Scenario(name="toy-duplicate-test", trial_fn=lambda ctx: {})
        register(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register(Scenario(name="toy-duplicate-test",
                                  trial_fn=lambda ctx: {}))
        finally:
            unregister("toy-duplicate-test")

    def test_trial_payload_must_be_dict_of_scalars(self):
        bad_type = Scenario(name="toy-bad", trial_fn=lambda ctx: [1, 2])
        with pytest.raises(TypeError, match="expected dict"):
            bad_type.run_trial(None)
        bad_metric = Scenario(
            name="toy-bad",
            trial_fn=lambda ctx: {"metrics": {"xs": [1, 2]}},
        )
        with pytest.raises(TypeError, match="must be scalars"):
            bad_metric.run_trial(None)
