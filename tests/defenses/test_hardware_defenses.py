"""Tests for RRS / SRS / SHADOW / counter trackers against hammer attacks."""

import numpy as np
import pytest

from repro.attacks import RowHammerAttacker
from repro.defenses import (
    RandomizedRowSwap,
    SecureRowSwap,
    Shadow,
    make_counter_per_row,
    make_counter_tree,
    make_graphene,
    make_hydra,
    make_twice,
)
from repro.dram import DramDevice, DramGeometry, MemoryController, TimingParams
from repro.mapping import WeightLayout
from repro.nn import QuantizedModel
from repro.nn.quant import BitLocation

GEOMETRY = DramGeometry(
    banks=2, subarrays_per_bank=4, rows_per_subarray=64, row_bytes=128
)


def build_stack(fresh_model, t_rh=1000, seed=0):
    qmodel = QuantizedModel(fresh_model)
    controller = MemoryController(DramDevice(GEOMETRY), TimingParams(t_rh=t_rh))
    layout = WeightLayout(qmodel, controller, seed=seed)
    return qmodel, controller, layout


class TestRRS:
    def test_blocks_non_tracking_attacker(self, fresh_model):
        qmodel, controller, layout = build_stack(fresh_model)
        rrs = RandomizedRowSwap(controller, seed=1)
        attacker = RowHammerAttacker(
            controller, layout, defense=rrs, track_swaps=False
        )
        assert not attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=2)
        assert rrs.stats.reactions > 0

    def test_defeated_by_tracking_attacker(self, fresh_model):
        """Section 1: swapping the aggressor is purposeless when the
        attacker follows the victim and re-targets its new neighbour."""
        qmodel, controller, layout = build_stack(fresh_model)
        rrs = RandomizedRowSwap(controller, seed=1)
        attacker = RowHammerAttacker(
            controller, layout, defense=rrs, track_swaps=True
        )
        assert attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=3)

    def test_counters_reset_each_refresh_interval(self, fresh_model):
        qmodel, controller, layout = build_stack(fresh_model)
        rrs = RandomizedRowSwap(controller, seed=1)
        from repro.dram import RowAddress
        row = RowAddress(0, 0, 10)
        controller.activate(row, count=rrs.trigger_count - 1, hammer=True)
        controller.advance_time(controller.ns_until_refresh())
        rrs.tick()
        controller.activate(row, count=rrs.trigger_count - 1, hammer=True)
        assert rrs.stats.reactions == 0

    def test_trigger_fraction_validation(self, fresh_model):
        _, controller, _ = build_stack(fresh_model)
        with pytest.raises(ValueError):
            RandomizedRowSwap(controller, trigger_fraction=0.0)


class TestSRS:
    def test_blocks_non_tracking_attacker(self, fresh_model):
        qmodel, controller, layout = build_stack(fresh_model)
        srs = SecureRowSwap(controller, tracked_fraction=1.0, seed=2)
        # SRS triggers late (0.8 T_RH): the attacker's bursts must be finer
        # than the defense's remaining margin for the trigger to land in time.
        attacker = RowHammerAttacker(
            controller, layout, defense=srs, track_swaps=False,
            chunks_per_window=8,
        )
        assert not attacker.attempt_flip(BitLocation(0, 4, 7), max_windows=2)

    def test_swaps_less_than_rrs(self, fresh_model):
        """SRS triggers later (0.8 T_RH vs 0.5 T_RH): fewer swaps for the
        same hammer pattern."""
        results = {}
        for cls, kwargs in (
            (RandomizedRowSwap, {}),
            (SecureRowSwap, {"tracked_fraction": 1.0}),
        ):
            qmodel, controller, layout = build_stack(fresh_model)
            defense = cls(controller, seed=3, **kwargs)
            attacker = RowHammerAttacker(
                controller, layout, defense=defense, track_swaps=False
            )
            attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=2)
            results[cls.__name__] = defense.stats.reactions
        assert results["SecureRowSwap"] <= results["RandomizedRowSwap"]

    def test_tracked_fraction_validation(self, fresh_model):
        _, controller, _ = build_stack(fresh_model)
        with pytest.raises(ValueError):
            SecureRowSwap(controller, tracked_fraction=0.0)


class TestShadow:
    def test_blocks_tracking_attacker(self, fresh_model):
        """Victim-focused shuffling survives the white-box attacker (the
        paper keeps SHADOW as the only comparable prior in Fig. 8)."""
        qmodel, controller, layout = build_stack(fresh_model)
        shadow = Shadow(controller, seed=1)
        attacker = RowHammerAttacker(
            controller, layout, defense=shadow, track_swaps=True
        )
        assert not attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=3)
        assert shadow.stats.rows_moved > 0

    def test_budget_exhaustion_leaks_flips(self, fresh_model):
        qmodel, controller, layout = build_stack(fresh_model)
        shadow = Shadow(controller, shuffles_per_tref=0, seed=1)
        attacker = RowHammerAttacker(
            controller, layout, defense=shadow, track_swaps=True
        )
        assert attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=2)
        assert shadow.stats.skipped_for_budget > 0

    def test_logical_data_preserved_across_shuffles(self, fresh_model):
        qmodel, controller, layout = build_stack(fresh_model)
        shadow = Shadow(controller, seed=1)
        snap = qmodel.snapshot()
        attacker = RowHammerAttacker(
            controller, layout, defense=shadow, track_swaps=True
        )
        attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=2)
        # The flip was blocked AND no other weight was corrupted by the
        # shuffling itself.
        layout.sync_model_from_dram()
        assert qmodel.hamming_distance_from(snap) == 0

    def test_validates_shadow_rows(self, fresh_model):
        _, controller, _ = build_stack(fresh_model)
        with pytest.raises(ValueError):
            Shadow(controller, shadow_rows_per_subarray=0)

    def test_close_detaches_from_controller(self, fresh_model):
        """A closed defense stops observing (and reacting to) traffic."""
        qmodel, controller, layout = build_stack(fresh_model)
        shadow = Shadow(controller, seed=1)
        attacker = RowHammerAttacker(
            controller, layout, defense=shadow, track_swaps=True
        )
        attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=1)
        moved = shadow.stats.rows_moved
        assert moved > 0
        shadow.close()
        shadow.close()  # idempotent
        attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=1)
        assert shadow.stats.rows_moved == moved

    def test_context_manager_closes(self, fresh_model):
        from repro.dram import RowAddress

        _, controller, _ = build_stack(fresh_model)
        with Shadow(controller, seed=1) as shadow:
            assert shadow.stats.reactions == 0
        # Hook removed: activations no longer reach the defense.
        controller.activate(RowAddress(0, 0, 1), count=2000, hammer=True)
        assert shadow.stats.rows_moved == 0


class TestCounterTrackers:
    @pytest.mark.parametrize(
        "factory",
        [make_graphene, make_twice, make_hydra, make_counter_tree],
        ids=["graphene", "twice", "hydra", "counter-tree"],
    )
    def test_victim_refresh_blocks_flips(self, fresh_model, factory):
        qmodel, controller, layout = build_stack(fresh_model)
        tracker = factory(controller)
        attacker = RowHammerAttacker(
            controller, layout, defense=tracker, track_swaps=True
        )
        assert not attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=2)
        assert tracker.stats.reactions > 0

    def test_counter_per_row_blocks_with_late_trigger(self, fresh_model):
        qmodel, controller, layout = build_stack(fresh_model)
        tracker = make_counter_per_row(controller)
        assert tracker.trigger_count == 750
        attacker = RowHammerAttacker(
            controller, layout, defense=tracker, track_swaps=True,
        )
        assert not attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=2)

    def test_names_are_distinct(self, fresh_model):
        _, controller, _ = build_stack(fresh_model)
        names = {
            factory(controller).name
            for factory in (
                make_graphene, make_twice, make_hydra,
                make_counter_per_row, make_counter_tree,
            )
        }
        assert len(names) == 5


class TestPPim:
    def test_ppim_blocks_tracking_attacker(self, fresh_model):
        from repro.defenses import make_ppim

        qmodel, controller, layout = build_stack(fresh_model)
        ppim = make_ppim(controller)
        attacker = RowHammerAttacker(
            controller, layout, defense=ppim, track_swaps=True
        )
        assert not attacker.attempt_flip(BitLocation(0, 0, 7), max_windows=2)
        assert ppim.name == "p-pim"
        assert ppim.stats.reactions > 0
