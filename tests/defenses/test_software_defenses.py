"""Tests for the software BFA defenses of Table 3."""

import numpy as np
import pytest

from repro.attacks import BfaConfig, BitFlipAttack, SoftwareFlipExecutor
from repro.defenses.software import (
    ReconstructingExecutor,
    SignActivation,
    WeightReconstructionGuard,
    bake_binarization,
    binarize_ste,
    clustering_penalty,
    enable_weight_binarization,
    finetune_with_clustering,
    width_scale_for_capacity,
)
from repro.nn import QuantizedModel, Tensor
from repro.nn.quant import BitLocation


class TestBinarization:
    def test_binarize_ste_values(self):
        w = Tensor(np.array([[0.5, -0.1], [0.3, -0.7]], dtype=np.float32),
                   requires_grad=True)
        out = binarize_ste(w)
        alpha = np.abs(w.data).mean()
        assert set(np.unique(out.data)) == {np.float32(-alpha),
                                            np.float32(alpha)}

    def test_binarize_ste_straight_through_gradient(self):
        w = Tensor(np.array([1.0, -2.0], dtype=np.float32),
                   requires_grad=True)
        out = binarize_ste(w).sum()
        out.backward()
        np.testing.assert_allclose(w.grad, np.ones(2))

    def test_enable_and_bake(self, fresh_model):
        count = enable_weight_binarization(fresh_model)
        assert count > 0
        baked = bake_binarization(fresh_model)
        assert baked == count
        # After baking every conv/linear weight is two-valued.
        from repro.nn import Conv2d, Linear
        for module in fresh_model.modules():
            if isinstance(module, (Conv2d, Linear)):
                assert module.weight_transform is None
                assert len(np.unique(module.weight.data)) <= 2

    def test_binarized_model_resists_bfa_better(
        self, fresh_model, trained_state, tiny_dataset
    ):
        from tests.conftest import make_tiny_model
        from repro.nn import SGD, fit

        rng = np.random.default_rng(0)
        x, y = tiny_dataset.attack_batch(96, rng)
        config = BfaConfig(max_iterations=8, exact_eval_top=4)

        plain = QuantizedModel(fresh_model)
        plain_result = BitFlipAttack(
            plain, x, y, config=config,
            eval_x=tiny_dataset.x_test, eval_y=tiny_dataset.y_test,
        ).run()

        binary_model = make_tiny_model(seed=0)
        binary_model.load_state_dict(trained_state)
        enable_weight_binarization(binary_model)
        # Binarization-aware fine-tune (STE) before freezing.
        fit(binary_model, tiny_dataset, epochs=2, batch_size=64, lr=0.01,
            seed=0)
        bake_binarization(binary_model)
        binary_model.eval()
        binary = QuantizedModel(binary_model)
        binary_result = BitFlipAttack(
            binary, x, y, config=config,
            eval_x=tiny_dataset.x_test, eval_y=tiny_dataset.y_test,
        ).run()
        # The mechanism behind Table 3's binary-weight row: with weights at
        # +-127 the worst single-bit flip moves a weight by ~one weight
        # magnitude, while the 8-bit baseline's sign-bit flips can move a
        # near-zero weight by the full 128 x scale range.
        for b_layer, p_layer in zip(binary.layers, plain.layers):
            worst_binary = 128 * b_layer.scale
            mean_binary = np.abs(
                b_layer.weight_int.astype(np.float64) * b_layer.scale
            ).mean()
            assert worst_binary <= 1.02 * mean_binary * (128 / 127)
            smallest_plain = int(np.abs(p_layer.weight_int.astype(np.int32)).min())
            worst_plain_ratio = (128 - smallest_plain) / 127
            assert worst_plain_ratio > 0.9  # near the full dynamic range
        # And behaviourally, equal budgets never hurt the binary model
        # much more (the full collapse-scale trend is the Table 3 bench).
        plain_drop = plain_result.initial_accuracy - plain_result.final_accuracy
        binary_drop = (
            binary_result.initial_accuracy - binary_result.final_accuracy
        )
        assert binary_drop < plain_drop + 0.05

    def test_sign_activation_forward_and_ste(self):
        x = Tensor(np.array([-2.0, -0.5, 0.5, 2.0], dtype=np.float32),
                   requires_grad=True)
        out = SignActivation()(x)
        np.testing.assert_array_equal(out.data, [-1.0, -1.0, 1.0, 1.0])
        out.sum().backward()
        # Gradient passes only where |x| <= 1.
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 1.0, 0.0])


class TestClustering:
    def test_penalty_pulls_towards_centres(self, fresh_model):
        total = clustering_penalty(fresh_model, lam=1e-2)
        assert total > 0
        # Gradients point from weights towards +-mean|W|.
        from repro.nn import Conv2d
        conv = next(m for m in fresh_model.modules() if isinstance(m, Conv2d))
        w = conv.weight.data
        centre = np.abs(w).mean()
        target = np.where(w >= 0, centre, -centre)
        expected = 2 * 1e-2 * (w - target)
        np.testing.assert_allclose(conv.weight.grad, expected, rtol=1e-5)

    def test_penalty_validates_lambda(self, fresh_model):
        with pytest.raises(ValueError):
            clustering_penalty(fresh_model, lam=-1.0)

    def test_finetune_reduces_weight_spread(self, fresh_model, tiny_dataset):
        from repro.nn import Conv2d
        conv = next(m for m in fresh_model.modules() if isinstance(m, Conv2d))

        def spread(module):
            w = module.weight.data
            centre = np.abs(w).mean()
            return float(np.abs(np.abs(w) - centre).mean())

        before = spread(conv)
        finetune_with_clustering(fresh_model, tiny_dataset, epochs=1,
                                 lam=5e-3, lr=0.01)
        assert spread(conv) < before


class TestReconstruction:
    def test_guard_clips_outliers(self, fresh_quantized):
        guard = WeightReconstructionGuard(fresh_quantized, percentile=99.0)
        layer = fresh_quantized.layer(0)
        bound = guard.bounds[0]
        layer.set_int(0, 127)  # way beyond the 99th percentile
        corrected = guard.reconstruct()
        assert corrected >= 1
        assert abs(layer.get_int(0)) <= bound

    def test_executor_repairs_after_flip(self, fresh_quantized):
        guard = WeightReconstructionGuard(fresh_quantized, percentile=99.0)
        executor = ReconstructingExecutor(
            SoftwareFlipExecutor(fresh_quantized), guard
        )
        # Force a small weight, then flip its sign bit: |w'| ~ 128 - |w|,
        # an outlier the guard must clamp back.
        layer = fresh_quantized.layer(0)
        layer.set_int(5, 1)
        assert executor.execute(BitLocation(0, 5, 7))
        assert abs(layer.get_int(5)) <= guard.bounds[0]

    def test_percentile_validation(self, fresh_quantized):
        with pytest.raises(ValueError):
            WeightReconstructionGuard(fresh_quantized, percentile=0.0)


class TestCapacity:
    def test_width_scaling_squares_to_capacity(self):
        assert width_scale_for_capacity(0.5, 16.0) == pytest.approx(2.0)
        assert width_scale_for_capacity(1.0, 4.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            width_scale_for_capacity(0.0, 4.0)
        with pytest.raises(ValueError):
            width_scale_for_capacity(1.0, 0.5)

    def test_wider_model_has_more_params(self):
        from repro.nn import make_resnet20
        base = make_resnet20(width_scale=0.5)
        wide = make_resnet20(width_scale=width_scale_for_capacity(0.5, 4.0))
        ratio = wide.parameter_count() / base.parameter_count()
        assert 3.0 < ratio < 5.0
