"""Tests for the unified Defense protocol, registry, and stats plumbing."""

import json

import numpy as np
import pytest

from repro.defenses.base import DefenseStats
from repro.defenses.protocol import (
    DefenseContext,
    ReconstructionDefense,
    SecuredBitsDefense,
    UndefendedDefense,
)
from repro.defenses.radar import RadarDefense
from repro.defenses.registry import (
    build_defense,
    defense,
    defense_names,
    get_defense,
    unregister_defense,
)
from repro.dram import DramDevice, DramGeometry, MemoryController, TimingParams
from repro.nn.quant import BitLocation

BUILTIN_DEFENSES = {
    "none", "dnn-defender", "rrs", "srs", "shadow", "p-pim",
    "radar", "reconstruction", "binarize", "clustering", "capacity",
}


class TestDefenseStats:
    def test_note_accumulates(self):
        stats = DefenseStats()
        stats.note("sweeps")
        stats.note("sweeps")
        stats.note("detections", 3)
        assert stats.notes == {"sweeps": 2, "detections": 3}

    def test_merge_sums_fields_and_notes(self):
        a = DefenseStats(reactions=1, rows_moved=2, notes={"sweeps": 1})
        b = DefenseStats(reactions=4, skipped_for_budget=1,
                         notes={"sweeps": 2, "detections": 5})
        out = a.merge(b)
        assert out is a  # in place
        assert a.reactions == 5
        assert a.rows_moved == 2
        assert a.skipped_for_budget == 1
        assert a.notes == {"sweeps": 3, "detections": 5}

    def test_as_metrics_flattens_notes_to_scalars(self):
        stats = DefenseStats(reactions=2, notes={"b": 1, "a": 7})
        metrics = stats.as_metrics(prefix="defense_")
        assert metrics["defense_reactions"] == 2.0
        assert metrics["defense_notes.a"] == 7.0
        assert metrics["defense_notes.b"] == 1.0
        assert all(isinstance(v, float) for v in metrics.values())
        # Deterministic key order: artifacts must not depend on insertion.
        assert list(metrics) == sorted(metrics, key=list(metrics).index)
        assert json.loads(json.dumps(metrics)) == metrics

    def test_to_json_round_trip(self):
        stats = DefenseStats(reactions=1, notes={"z": 2, "a": 1})
        payload = json.loads(json.dumps(stats.to_json()))
        rebuilt = DefenseStats(
            reactions=payload["reactions"],
            rows_moved=payload["rows_moved"],
            skipped_for_budget=payload["skipped_for_budget"],
            notes=dict(payload["notes"]),
        )
        assert rebuilt == stats
        assert list(payload["notes"]) == ["a", "z"]

    def test_notes_survive_scenario_aggregation(self):
        """Per-defense counters ride per-trial metrics into artifacts."""
        from repro.experiments import run_scenario, scenario, unregister

        @scenario("_stats-probe", default_trials=2)
        def _probe(ctx):
            stats = DefenseStats(reactions=ctx.trial_index)
            stats.note("detections", ctx.trial_index + 1)
            return {"metrics": stats.as_metrics("defense_"), "detail": {}}

        try:
            result = run_scenario("_stats-probe", trials=2, seed=0)
        finally:
            unregister("_stats-probe")
        assert result.metric("defense_notes.detections") == pytest.approx(1.5)
        payload = json.loads(json.dumps(result.to_json()))
        assert "defense_notes.detections" in payload["metrics"]


class TestRegistry:
    def test_builtins_registered(self):
        assert BUILTIN_DEFENSES <= set(defense_names())

    def test_unknown_name_lists_catalogue(self):
        with pytest.raises(KeyError, match="registered defenses"):
            get_defense("no-such-defense")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @defense("none")
            def _clash(context):  # pragma: no cover - never built
                raise AssertionError

    def test_decorator_registers_and_builds(self, fresh_quantized):
        @defense("_test-noop", kind="software", cost=2.0)
        def _build(context):
            return UndefendedDefense(context.qmodel)

        try:
            spec = get_defense("_test-noop")
            assert spec.cost == 2.0
            built = build_defense(
                "_test-noop", DefenseContext(qmodel=fresh_quantized)
            )
            assert built.qmodel is fresh_quantized
        finally:
            unregister_defense("_test-noop")
        assert "_test-noop" not in defense_names()

    def test_training_time_defenses_opt_out_of_tournament(self):
        for name in ("binarize", "clustering", "capacity"):
            assert not get_defense(name).tournament
        for name in ("none", "radar", "shadow", "dnn-defender"):
            assert get_defense(name).tournament


class TestProtocolLifecycle:
    def test_undefended_round_trip(self, fresh_quantized):
        with build_defense(
            "none", DefenseContext(qmodel=fresh_quantized)
        ) as d:
            assert d.executor().execute(BitLocation(0, 0, 0))
            assert d.protected_bits() == frozenset()
            assert d.guarded_bit_positions() == frozenset()
            assert d.recover() == 0
            assert d.finalize().notes["landed"] == 1
        d.close()  # idempotent after __exit__

    def test_secured_bits_block_and_protocol_surface(self, fresh_quantized):
        secured = {BitLocation(0, 0, 7), BitLocation(0, 1, 7)}
        d = SecuredBitsDefense(fresh_quantized, secured)
        assert not d.executor().execute(BitLocation(0, 0, 7))   # blocked
        assert d.executor().execute(BitLocation(0, 2, 7))       # lands
        assert d.protected_bits() == frozenset(secured)
        stats = d.finalize()
        assert stats.reactions == 1
        assert stats.notes == {"blocked": 1, "landed": 1, "secured_bits": 2}

    def test_behavioral_defense_from_registry(self, fresh_quantized):
        d = build_defense(
            "shadow", DefenseContext(qmodel=fresh_quantized, seed=5)
        )
        attempts = 40
        for i in range(attempts):
            d.executor().execute(BitLocation(0, i, 7))
        stats = d.finalize()
        assert stats.notes["blocked"] + stats.notes["landed"] == attempts
        assert stats.notes["blocked"] > 0  # SHADOW blocks most MSB flips

    def test_behavioral_defense_seed_replayable(self, quantized_factory):
        def outcome(seed):
            d = build_defense(
                "shadow",
                DefenseContext(qmodel=quantized_factory(), seed=seed),
            )
            return [
                d.executor().execute(BitLocation(0, i, 7)) for i in range(20)
            ]

        assert outcome(3) == outcome(3)
        assert outcome(3) != outcome(4)  # streams actually differ


class TestReconstructionDefense:
    def test_executor_round_trip_clamps_outliers(self, fresh_quantized):
        d = ReconstructionDefense(fresh_quantized, percentile=99.0)
        layer = fresh_quantized.layer(0)
        layer.set_int(5, 1)
        assert d.executor().execute(BitLocation(0, 5, 7))  # sign flip
        assert abs(layer.get_int(5)) <= d.guard.bounds[0]
        stats = d.finalize()
        assert stats.notes["landed"] == 1
        assert stats.notes["corrections"] >= 1

    def test_recover_reports_corrected_weights(self, fresh_quantized):
        d = build_defense(
            "reconstruction", DefenseContext(qmodel=fresh_quantized)
        )
        fresh_quantized.layer(0).set_int(0, 127)  # out-of-band outlier
        corrected = d.recover()
        assert corrected >= 1
        assert d.stats.notes["recovered_weights"] == corrected

    def test_accuracy_floor_not_below_undefended(
        self, quantized_factory, tiny_dataset
    ):
        """The clamp bounds BFA damage: the defended floor never sinks
        meaningfully below the undefended floor at equal budget."""
        from repro.analysis.defense_eval import evaluate_tournament_cell

        def floor(name):
            d = build_defense(
                name,
                DefenseContext(qmodel=quantized_factory(),
                               dataset=tiny_dataset),
            )
            try:
                return evaluate_tournament_cell(
                    "bfa", d, tiny_dataset, budget=6, seed=0
                )
            finally:
                d.close()

        undefended = floor("none")
        guarded = floor("reconstruction")
        assert (
            guarded["floor_accuracy"]
            >= undefended["floor_accuracy"] - 0.02
        )
        assert guarded["clean_accuracy"] == pytest.approx(
            undefended["clean_accuracy"]
        )


class TestRadarDefense:
    def test_msb_flip_detected_and_zeroed(self, fresh_quantized):
        radar = RadarDefense(fresh_quantized, group_size=32)
        fresh_quantized.flip_bit(BitLocation(0, 3, 7))
        assert radar.sweep() == [(0, 0)]
        zeroed = radar.detect_and_recover()
        assert zeroed >= 1
        span = fresh_quantized.layer(0).weight_int.reshape(-1)[:32]
        assert not span.any()
        assert radar.sweep() == []  # golden refreshed after repair
        assert radar.stats.notes["detections"] == 2
        assert radar.stats.notes["weights_zeroed"] == zeroed

    def test_low_bit_flips_invisible(self, fresh_quantized):
        radar = RadarDefense(fresh_quantized, group_size=32)
        for bit in range(6):  # unguarded columns
            fresh_quantized.flip_bit(BitLocation(0, 0, bit))
        assert radar.sweep() == []
        assert radar.guarded_bit_positions() == frozenset({6, 7})

    def test_reference_signatures_match_vectorized(self, fresh_quantized):
        radar = RadarDefense(fresh_quantized, group_size=16)
        for i in range(fresh_quantized.num_layers):
            np.testing.assert_array_equal(
                radar._layer_signatures(i),
                radar._layer_signatures_reference(i),
            )

    def test_tick_cadence_and_latency_accounting(self, fresh_quantized):
        radar = RadarDefense(fresh_quantized, group_size=32,
                             check_interval=4)
        fresh_quantized.flip_bit(BitLocation(0, 0, 6))
        for _ in range(3):
            radar.tick()
        assert radar.stats.notes.get("sweeps", 0) == 0  # not yet due
        radar.tick()
        assert radar.stats.notes["sweeps"] == 1
        assert radar.stats.notes["detections"] == 1
        rows = -(-fresh_quantized.total_weights // radar.weights_per_row)
        compare_rows = -(-radar.num_groups // 64)
        expected = (rows + compare_rows) * radar.timing.t_rc_ns
        assert radar.detection_ns == pytest.approx(expected)
        assert radar.stats.notes["detection_ns"] == int(round(expected))

    def test_controller_hook_attach_detach(self, fresh_quantized):
        """REP004/REP104: the activate hook must detach on close()."""
        controller = MemoryController(
            DramDevice(DramGeometry(
                banks=2, subarrays_per_bank=4, rows_per_subarray=32,
                row_bytes=128,
            )),
            TimingParams(t_rh=1000),
        )
        radar = RadarDefense(
            fresh_quantized, controller=controller, check_activations=8
        )
        assert radar._on_activate in controller._activate_hooks
        fresh_quantized.flip_bit(BitLocation(0, 0, 7))
        radar._on_activate(None, 0.0, 8)  # ACT budget reached -> sweep
        assert radar.stats.notes["sweeps"] == 1
        assert radar.stats.notes["detections"] == 1
        radar.close()
        assert radar._on_activate not in controller._activate_hooks
        radar.close()  # idempotent

    def test_build_validation(self, fresh_quantized):
        with pytest.raises(ValueError):
            RadarDefense(fresh_quantized, group_size=0)
        with pytest.raises(ValueError):
            RadarDefense(fresh_quantized, check_interval=0)
