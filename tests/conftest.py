"""Shared fixtures: a small trained model + dataset, built once per session."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    QuantizedModel,
    ReLU,
    Sequential,
    cifar10_like,
    fit,
)


def make_tiny_model(seed: int = 0) -> Sequential:
    """A small convnet that trains in seconds and quantizes cleanly."""
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(3, 16, 3, padding=1, rng=rng),
        BatchNorm2d(16),
        ReLU(),
        MaxPool2d(2),
        Conv2d(16, 32, 3, padding=1, rng=rng),
        BatchNorm2d(32),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(32 * 2 * 2, 64, rng=rng),
        ReLU(),
        Linear(64, 10, rng=rng),
    )


@pytest.fixture(scope="session")
def tiny_dataset():
    return cifar10_like(n_train=768, n_test=256, image_hw=8, seed=0)


@pytest.fixture(scope="session")
def trained_state(tiny_dataset):
    """Train once per session; tests get fresh copies via the state dict."""
    model = make_tiny_model(seed=0)
    history = fit(model, tiny_dataset, epochs=6, batch_size=64, lr=0.08,
                  seed=0)
    assert history["test_accuracy"][-1] > 0.75, (
        "fixture model failed to train; attack tests would be meaningless"
    )
    return model.state_dict()


@pytest.fixture
def fresh_model(trained_state):
    model = make_tiny_model(seed=0)
    model.load_state_dict(trained_state)
    model.eval()
    return model


@pytest.fixture
def fresh_quantized(fresh_model):
    return QuantizedModel(fresh_model)


@pytest.fixture
def quantized_factory(trained_state):
    """Build any number of identical trained quantized models (parity
    tests compare two independent copies side by side)."""

    def build() -> QuantizedModel:
        model = make_tiny_model(seed=0)
        model.load_state_dict(trained_state)
        model.eval()
        return QuantizedModel(model)

    return build
