"""Tests for command cost accounting and timing parameters."""

import pytest

from repro.dram.commands import (
    Command,
    CommandStats,
    command_energy_pj,
    command_latency_ns,
)
from repro.dram.timing import (
    DDR4_DEFAULT,
    LPDDR4_DEFAULT,
    TRH_BY_GENERATION,
    TRH_LPDDR4,
    TimingParams,
)


class TestTimingParams:
    def test_swap_cost_is_three_aaps(self):
        t = TimingParams()
        assert t.t_swap_ns == pytest.approx(3 * t.t_aap_ns)
        assert t.t_swap_unpipelined_ns == pytest.approx(4 * t.t_aap_ns)

    def test_hammer_window(self):
        t = TimingParams(t_rh=1000)
        assert t.hammer_window_ns == pytest.approx(1000 * t.t_act_eff_ns)

    def test_with_trh(self):
        t = TimingParams().with_trh(2000)
        assert t.t_rh == 2000
        # original untouched (frozen dataclass)
        assert TimingParams().t_rh == TRH_LPDDR4

    def test_max_swaps_per_window(self):
        t = TimingParams(t_rh=4800)
        assert t.max_swaps_per_window() == int(
            t.hammer_window_ns / t.t_swap_ns
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingParams(t_rh=0)
        with pytest.raises(ValueError):
            TimingParams(t_aap_ns=-1)

    def test_rule_constant_validation(self):
        for field in ("t_rcd_ns", "t_wr_ns", "t_faw_ns", "t_refi_ns",
                      "t_rfc_ns"):
            with pytest.raises(ValueError):
                TimingParams(**{field: 0.0})
        # A refresh command outlasting the refresh interval is nonsense.
        with pytest.raises(ValueError):
            TimingParams(t_refi_ns=100.0, t_rfc_ns=100.0)

    def test_rule_constants_stay_below_charged_latencies(self):
        # The calibration invariant the strict checker relies on: every
        # rule window is at most the latency the controller charges for
        # the governing command.
        t = TimingParams()
        assert t.t_ras_ns <= t.t_rc_ns
        assert t.t_rcd_ns <= t.t_rc_ns
        assert t.t_wr_ns <= t.t_rc_ns
        assert t.t_rp_ns <= t.t_rc_ns
        assert t.t_faw_ns <= 4 * min(t.t_rc_ns, t.t_act_eff_ns)
        assert t.t_rc_ns <= t.t_aap_ns  # AAP occupies longer than one ACT

    def test_refresh_overhead_fraction(self):
        t = TimingParams()
        assert t.refresh_overhead_fraction == pytest.approx(350.0 / 7812.5)
        # Halving t_ref (and t_refi with it) doubles the overhead.
        harder = TimingParams(t_ref_ms=32.0, t_refi_ns=32e6 / 8192)
        assert harder.refresh_overhead_fraction == pytest.approx(
            2 * t.refresh_overhead_fraction
        )

    def test_with_trh_at_tiny_threshold(self):
        # T_RH = 1: one activation per window; the hammer window shrinks
        # to a single T_ACT and no swap fits inside it.
        t = TimingParams().with_trh(1)
        assert t.t_rh == 1
        assert t.hammer_window_ns == pytest.approx(t.t_act_eff_ns)
        assert t.max_swaps_per_window() == 0

    def test_max_swaps_per_window_boundary(self):
        # Exactly-divisible window: floor lands on the exact quotient.
        # 3 x t_aap = 270; T_RH = 270 / 118 is fractional, so pick t_rh
        # where the window is an exact multiple of t_swap.
        t = TimingParams(t_act_eff_ns=90.0, t_rh=3)
        assert t.hammer_window_ns == pytest.approx(t.t_swap_ns)
        assert t.max_swaps_per_window() == 1
        just_under = TimingParams(t_act_eff_ns=89.9, t_rh=3)
        assert just_under.max_swaps_per_window() == 0

    def test_trh_table_matches_fig1a(self):
        assert TRH_BY_GENERATION["DDR3 (old)"] == 139_000
        assert TRH_BY_GENERATION["LPDDR4 (new)"] == 4_800
        assert TRH_LPDDR4 == 4_800
        assert LPDDR4_DEFAULT.t_rh == 4_800
        assert DDR4_DEFAULT.t_aap_ns == 90.0

    def test_t_ref_ns(self):
        assert TimingParams(t_ref_ms=64.0).t_ref_ns == 64e6


class TestCommandCosts:
    def test_every_command_has_latency_and_energy(self):
        t = TimingParams()
        for command in Command:
            assert command_latency_ns(command, t) > 0
            assert command_energy_pj(command, t) > 0

    def test_aap_uses_taap(self):
        t = TimingParams()
        assert command_latency_ns(Command.AAP, t) == t.t_aap_ns
        assert command_energy_pj(Command.AAP, t) == t.e_aap_pj


class TestCommandStats:
    def test_record_accumulates(self):
        t = TimingParams()
        stats = CommandStats()
        stats.record(Command.ACT, t, repeat=3)
        stats.record(Command.AAP, t)
        assert stats.count(Command.ACT) == 3
        assert stats.count(Command.AAP) == 1
        assert stats.count(Command.PRE) == 0
        assert stats.total_time_ns == pytest.approx(
            3 * t.t_rc_ns + t.t_aap_ns
        )

    def test_record_rejects_negative_repeat(self):
        with pytest.raises(ValueError):
            CommandStats().record(Command.ACT, TimingParams(), repeat=-1)

    def test_merge(self):
        t = TimingParams()
        a = CommandStats()
        b = CommandStats()
        a.record(Command.ACT, t, 2)
        b.record(Command.ACT, t, 5)
        b.record(Command.RD, t)
        a.merge(b)
        assert a.count(Command.ACT) == 7
        assert a.count(Command.RD) == 1
        assert a.total_time_ns == pytest.approx(7 * t.t_rc_ns + t.t_rc_ns)
