"""Tests for command cost accounting and timing parameters."""

import pytest

from repro.dram.commands import (
    Command,
    CommandStats,
    command_energy_pj,
    command_latency_ns,
)
from repro.dram.timing import (
    DDR4_DEFAULT,
    LPDDR4_DEFAULT,
    TRH_BY_GENERATION,
    TRH_LPDDR4,
    TimingParams,
)


class TestTimingParams:
    def test_swap_cost_is_three_aaps(self):
        t = TimingParams()
        assert t.t_swap_ns == pytest.approx(3 * t.t_aap_ns)
        assert t.t_swap_unpipelined_ns == pytest.approx(4 * t.t_aap_ns)

    def test_hammer_window(self):
        t = TimingParams(t_rh=1000)
        assert t.hammer_window_ns == pytest.approx(1000 * t.t_act_eff_ns)

    def test_with_trh(self):
        t = TimingParams().with_trh(2000)
        assert t.t_rh == 2000
        # original untouched (frozen dataclass)
        assert TimingParams().t_rh == TRH_LPDDR4

    def test_max_swaps_per_window(self):
        t = TimingParams(t_rh=4800)
        assert t.max_swaps_per_window() == int(
            t.hammer_window_ns / t.t_swap_ns
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingParams(t_rh=0)
        with pytest.raises(ValueError):
            TimingParams(t_aap_ns=-1)

    def test_trh_table_matches_fig1a(self):
        assert TRH_BY_GENERATION["DDR3 (old)"] == 139_000
        assert TRH_BY_GENERATION["LPDDR4 (new)"] == 4_800
        assert TRH_LPDDR4 == 4_800
        assert LPDDR4_DEFAULT.t_rh == 4_800
        assert DDR4_DEFAULT.t_aap_ns == 90.0

    def test_t_ref_ns(self):
        assert TimingParams(t_ref_ms=64.0).t_ref_ns == 64e6


class TestCommandCosts:
    def test_every_command_has_latency_and_energy(self):
        t = TimingParams()
        for command in Command:
            assert command_latency_ns(command, t) > 0
            assert command_energy_pj(command, t) > 0

    def test_aap_uses_taap(self):
        t = TimingParams()
        assert command_latency_ns(Command.AAP, t) == t.t_aap_ns
        assert command_energy_pj(Command.AAP, t) == t.e_aap_pj


class TestCommandStats:
    def test_record_accumulates(self):
        t = TimingParams()
        stats = CommandStats()
        stats.record(Command.ACT, t, repeat=3)
        stats.record(Command.AAP, t)
        assert stats.count(Command.ACT) == 3
        assert stats.count(Command.AAP) == 1
        assert stats.count(Command.PRE) == 0
        assert stats.total_time_ns == pytest.approx(
            3 * t.t_rc_ns + t.t_aap_ns
        )

    def test_record_rejects_negative_repeat(self):
        with pytest.raises(ValueError):
            CommandStats().record(Command.ACT, TimingParams(), repeat=-1)

    def test_merge(self):
        t = TimingParams()
        a = CommandStats()
        b = CommandStats()
        a.record(Command.ACT, t, 2)
        b.record(Command.ACT, t, 5)
        b.record(Command.RD, t)
        a.merge(b)
        assert a.count(Command.ACT) == 7
        assert a.count(Command.RD) == 1
        assert a.total_time_ns == pytest.approx(7 * t.t_rc_ns + t.t_rc_ns)
