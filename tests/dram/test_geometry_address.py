"""Tests for DRAM geometry arithmetic and addressing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.address import AddressMapper, RowAddress, RowIndirection
from repro.dram.geometry import PAPER_GEOMETRY, SMALL_GEOMETRY, DramGeometry


class TestGeometry:
    def test_paper_geometry_is_32gb_16_banks(self):
        assert PAPER_GEOMETRY.banks == 16
        assert PAPER_GEOMETRY.capacity_gib == 32.0

    def test_row_bits(self):
        assert SMALL_GEOMETRY.row_bits == SMALL_GEOMETRY.row_bytes * 8

    def test_total_rows(self):
        g = DramGeometry(banks=2, subarrays_per_bank=3, rows_per_subarray=8,
                         row_bytes=64)
        assert g.rows_per_bank == 24
        assert g.total_rows == 48

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DramGeometry(banks=0)

    def test_rejects_tiny_subarray(self):
        with pytest.raises(ValueError):
            DramGeometry(rows_per_subarray=2)

    def test_describe_mentions_banks(self):
        assert "banks" in SMALL_GEOMETRY.describe()


class TestAddressMapper:
    def setup_method(self):
        self.geometry = DramGeometry(
            banks=3, subarrays_per_bank=4, rows_per_subarray=16, row_bytes=32
        )
        self.mapper = AddressMapper(self.geometry)

    def test_roundtrip_all_rows(self):
        for flat in range(self.geometry.total_rows):
            addr = self.mapper.from_flat(flat)
            assert self.mapper.to_flat(addr) == flat

    def test_flat_order_walks_rows_first(self):
        a0 = self.mapper.from_flat(0)
        a1 = self.mapper.from_flat(1)
        assert a0 == RowAddress(0, 0, 0)
        assert a1 == RowAddress(0, 0, 1)

    def test_from_flat_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            self.mapper.from_flat(self.geometry.total_rows)
        with pytest.raises(ValueError):
            self.mapper.from_flat(-1)

    def test_validate_rejects_bad_bank(self):
        with pytest.raises(ValueError):
            self.mapper.validate(RowAddress(99, 0, 0))

    def test_neighbors_interior(self):
        addr = RowAddress(1, 2, 5)
        neighbors = self.mapper.neighbors(addr)
        assert neighbors == [RowAddress(1, 2, 4), RowAddress(1, 2, 6)]

    def test_neighbors_at_subarray_edges(self):
        first = self.mapper.neighbors(RowAddress(0, 0, 0))
        last = self.mapper.neighbors(
            RowAddress(0, 0, self.geometry.rows_per_subarray - 1)
        )
        assert first == [RowAddress(0, 0, 1)]
        assert last == [RowAddress(0, 0, self.geometry.rows_per_subarray - 2)]

    def test_neighbors_never_cross_subarray(self):
        for addr in self.mapper.iter_rows():
            for n in self.mapper.neighbors(addr):
                assert n.same_subarray(addr)

    @given(st.integers(0, 3 * 4 * 16 - 1))
    def test_roundtrip_property(self, flat):
        assert self.mapper.to_flat(self.mapper.from_flat(flat)) == flat


class TestRowIndirection:
    def setup_method(self):
        self.mapper = AddressMapper(SMALL_GEOMETRY)
        self.ind = RowIndirection(self.mapper)

    def test_identity_by_default(self):
        addr = RowAddress(0, 0, 5)
        assert self.ind.physical(addr) == addr
        assert self.ind.logical(addr) == addr
        assert self.ind.remapped_count == 0

    def test_swap_and_inverse(self):
        a = RowAddress(0, 0, 1)
        b = RowAddress(0, 0, 7)
        self.ind.swap(a, b)
        assert self.ind.physical(a) == b
        assert self.ind.physical(b) == a
        assert self.ind.logical(b) == a
        assert self.ind.logical(a) == b

    def test_double_swap_restores_identity(self):
        a = RowAddress(1, 1, 2)
        b = RowAddress(1, 1, 9)
        self.ind.swap(a, b)
        self.ind.swap(a, b)
        assert self.ind.physical(a) == a
        assert self.ind.physical(b) == b
        assert self.ind.remapped_count == 0

    def test_three_way_chain_stays_consistent(self):
        a = RowAddress(0, 0, 1)
        b = RowAddress(0, 0, 2)
        c = RowAddress(0, 0, 3)
        self.ind.swap(a, b)
        self.ind.swap(a, c)
        # data of a is now where c was; data of c is where b... follow:
        # after swap(a,b): a@B, b@A. after swap(a,c): a@C, c@B.
        assert self.ind.physical(a) == c
        assert self.ind.physical(c) == b
        assert self.ind.physical(b) == a
        # forward and reverse maps agree everywhere
        for logical in (a, b, c):
            assert self.ind.logical(self.ind.physical(logical)) == logical

    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63)),
                    max_size=30))
    def test_random_swaps_keep_bijection(self, pairs):
        mapper = AddressMapper(SMALL_GEOMETRY)
        ind = RowIndirection(mapper)
        logicals = []
        for i, j in pairs:
            a = mapper.from_flat(i)
            b = mapper.from_flat(j)
            if a == b:
                continue
            ind.swap(a, b)
            logicals.extend([a, b])
        seen_physical = set()
        for logical in set(logicals):
            physical = ind.physical(logical)
            assert ind.logical(physical) == logical
            assert physical not in seen_physical
            seen_physical.add(physical)
