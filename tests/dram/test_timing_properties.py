"""Property/fuzz tests for the timing checker.

Randomized *legal* schedules (commands spaced at or beyond every rule
window) must pass strict checking; the same schedule with one injected
violation must be caught, with the injected rule named.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dram import (
    Command,
    CommandEvent,
    TimingChecker,
    TimingParams,
    TimingViolation,
)

TIMING = TimingParams()

# Spacing at which any two consecutive commands are legal regardless of
# kind: beyond tRC, tRP, tRAS, tRCD, tWR, and wide enough that four
# successive gaps clear tFAW.
SAFE_GAP = max(
    TIMING.t_rc_ns, TIMING.t_ras_ns, TIMING.t_aap_ns, TIMING.t_faw_ns
)


def legal_schedule(choices, start_ns=0.0):
    """Build a legal event stream from per-step (kind, slack) choices."""
    events = []
    t = start_ns
    for kind, slack in choices:
        t += SAFE_GAP + slack
        if kind == "ACT":
            events.append(CommandEvent(
                time_ns=t, command=Command.ACT, bank=0, subarray=0, row=1
            ))
        elif kind == "AAP":
            events.append(CommandEvent(
                time_ns=t, command=Command.AAP, bank=0, subarray=0, row=2,
                dst_subarray=0, dst_row=3,
            ))
            t += TIMING.t_aap_ns  # the copy occupies the bank
        elif kind == "PRE":
            events.append(CommandEvent(time_ns=t, command=Command.PRE, bank=0))
        elif kind in ("RD", "WR"):
            events.append(CommandEvent(
                time_ns=t, command=Command[kind], bank=0, subarray=0, row=1
            ))
        elif kind == "HAMMER":
            count = 1 + int(slack) % 50
            events.append(CommandEvent(
                time_ns=t, command=Command.ACT, bank=0, subarray=0, row=1,
                count=count, hammer=True,
            ))
            t += count * TIMING.t_act_eff_ns
        elif kind == "REF":
            events.append(CommandEvent(time_ns=t, command=Command.REF))
            t += TIMING.t_rfc_ns
    return events


step = st.tuples(
    st.sampled_from(["ACT", "AAP", "PRE", "RD", "WR", "HAMMER", "REF"]),
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
)


class TestLegalSchedulesPassStrict:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(step, min_size=1, max_size=40))
    def test_random_legal_schedule_is_clean(self, choices):
        checker = TimingChecker(timing=TIMING, mode="strict")
        for event in legal_schedule(choices):
            checker.observe(event)
        assert checker.violations == []

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=1, max_value=4))
    def test_multi_bank_interleaving_is_clean(self, banks):
        # Round-robin across banks at SAFE_GAP spacing: per-bank gaps
        # only grow, and the device-wide tFAW window stays clear.
        checker = TimingChecker(timing=TIMING, mode="strict")
        t = 0.0
        for i in range(24):
            t += SAFE_GAP
            checker.observe(CommandEvent(
                time_ns=t, command=Command.ACT, bank=i % banks,
                subarray=0, row=1,
            ))
        assert checker.violations == []


# The ISSUE's named injection cases plus one per remaining rule: a base
# legal schedule, one mutation, and the rule that must be reported.
INJECTIONS = [
    pytest.param(
        [("ACT", "PRE_THEN_EARLY_ACT")], "tRP", id="early-act-after-pre",
    ),
    pytest.param(
        [("ACT",), ("ACT", None, TIMING.t_rc_ns / 2)], "tRC",
        id="early-act-after-act",
    ),
    pytest.param(
        [("ACT", "EARLY_PRE")], "tRAS", id="early-pre-after-act",
    ),
    pytest.param(
        [("ACT", "EARLY_RD")], "tRCD", id="early-read-after-act",
    ),
    pytest.param(
        [("ACT", "WR"), ("PRE_AFTER_WR",)], "tWR", id="early-pre-after-wr",
    ),
    pytest.param(
        [("FAW_BURST",)], "tFAW", id="fifth-act-inside-tfaw",
    ),
    pytest.param(
        [("SKIP_REFRESH",)], "tREFI", id="missed-trefi",
    ),
    pytest.param(
        [("REF",), ("ACT", None, TIMING.t_rfc_ns / 2)], "tRFC",
        id="act-inside-trfc",
    ),
]


def run_injection(script):
    """Interpreter for the tiny injection scripts above."""
    checker = TimingChecker(timing=TIMING, mode="audit")
    t = 0.0
    for op in script:
        kind = op[0]
        if kind == "ACT":
            follow = op[1] if len(op) > 1 else None
            gap = op[2] if len(op) > 2 else SAFE_GAP
            t += gap
            checker.observe(CommandEvent(
                time_ns=t, command=Command.ACT, bank=0, subarray=0, row=1
            ))
            if follow == "PRE_THEN_EARLY_ACT":
                t += SAFE_GAP
                checker.observe(CommandEvent(
                    time_ns=t, command=Command.PRE, bank=0
                ))
                checker.observe(CommandEvent(
                    time_ns=t + TIMING.t_rp_ns / 2, command=Command.ACT,
                    bank=0, subarray=0, row=1,
                ))
            elif follow == "EARLY_PRE":
                checker.observe(CommandEvent(
                    time_ns=t + TIMING.t_ras_ns / 2, command=Command.PRE,
                    bank=0,
                ))
            elif follow == "EARLY_RD":
                checker.observe(CommandEvent(
                    time_ns=t + TIMING.t_rcd_ns / 2, command=Command.RD,
                    bank=0, subarray=0, row=1,
                ))
            elif follow == "WR":
                t += SAFE_GAP
                checker.observe(CommandEvent(
                    time_ns=t, command=Command.WR, bank=0, subarray=0, row=1
                ))
            elif isinstance(follow, float):
                checker.observe(CommandEvent(
                    time_ns=t + follow, command=Command.ACT, bank=0,
                    subarray=0, row=1,
                ))
        elif kind == "PRE_AFTER_WR":
            checker.observe(CommandEvent(
                time_ns=t + TIMING.t_wr_ns / 2, command=Command.PRE, bank=0
            ))
        elif kind == "FAW_BURST":
            for i in range(5):
                checker.observe(CommandEvent(
                    time_ns=t + i * (TIMING.t_faw_ns / 8),
                    command=Command.ACT, bank=i, subarray=0, row=1,
                ))
        elif kind == "SKIP_REFRESH":
            checker.observe(CommandEvent(
                time_ns=t, command=Command.ACT, bank=0, subarray=0, row=1
            ))
            checker.observe(CommandEvent(
                time_ns=t + TIMING.t_ref_ns + 1e6, command=Command.ACT,
                bank=0, subarray=0, row=1,
            ))
        elif kind == "REF":
            t += SAFE_GAP
            checker.observe(CommandEvent(time_ns=t, command=Command.REF))
    return checker


class TestInjectedViolationsAreNamed:
    @pytest.mark.parametrize("script, rule", INJECTIONS)
    def test_injection_caught_with_rule_named(self, script, rule):
        checker = run_injection(script)
        assert rule in {v.rule for v in checker.violations}, (
            f"expected {rule}, got {checker.violation_counts}"
        )

    @pytest.mark.parametrize("script, rule", INJECTIONS)
    def test_strict_mode_raises_same_rule_first(self, script, rule):
        # Re-run each script strictly: the named rule is the first breach.
        audit = run_injection(script)
        first = audit.violations[0].rule
        assert first == rule

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(step, min_size=0, max_size=15),
        st.sampled_from(["tRC", "tRP", "tRAS", "tRCD"]),
        st.floats(min_value=0.05, max_value=0.9),
    )
    def test_one_violation_in_random_legal_prefix(self, choices, rule,
                                                  fraction):
        """A legal random prefix, then one too-early command."""
        events = legal_schedule(choices)
        t = events[-1].time_ns + 2 * SAFE_GAP if events else 2 * SAFE_GAP
        tail = {
            "tRC": [
                CommandEvent(time_ns=t, command=Command.ACT, bank=0,
                             subarray=0, row=1),
                CommandEvent(time_ns=t + fraction * TIMING.t_rc_ns,
                             command=Command.ACT, bank=0, subarray=0, row=1),
            ],
            "tRP": [
                CommandEvent(time_ns=t, command=Command.ACT, bank=0,
                             subarray=0, row=1),
                CommandEvent(time_ns=t + SAFE_GAP, command=Command.PRE,
                             bank=0),
                CommandEvent(
                    time_ns=t + SAFE_GAP + fraction * TIMING.t_rp_ns,
                    command=Command.ACT, bank=0, subarray=0, row=1,
                ),
            ],
            "tRAS": [
                CommandEvent(time_ns=t, command=Command.ACT, bank=0,
                             subarray=0, row=1),
                CommandEvent(time_ns=t + fraction * TIMING.t_ras_ns,
                             command=Command.PRE, bank=0),
            ],
            "tRCD": [
                CommandEvent(time_ns=t, command=Command.ACT, bank=0,
                             subarray=0, row=1),
                CommandEvent(time_ns=t + fraction * TIMING.t_rcd_ns,
                             command=Command.RD, bank=0, subarray=0, row=1),
            ],
        }[rule]
        checker = TimingChecker(timing=TIMING, mode="audit")
        for event in events + tail:
            checker.observe(event)
        assert rule in {v.rule for v in checker.violations}
