"""Tests for the memory controller: timing, RowHammer dynamics, RowClone."""

import numpy as np
import pytest

from repro.dram.address import RowAddress
from repro.dram.commands import Command
from repro.dram.controller import MemoryController
from repro.dram.device import DramDevice
from repro.dram.faults import ProfiledFlipModel
from repro.dram.geometry import DramGeometry
from repro.dram.rowclone import RowCloneEngine
from repro.dram.timing import TimingParams


def make_controller(t_rh=100, **timing_kwargs):
    geometry = DramGeometry(
        banks=2, subarrays_per_bank=2, rows_per_subarray=32, row_bytes=64
    )
    timing = TimingParams(t_rh=t_rh, **timing_kwargs)
    device = DramDevice(geometry)
    return MemoryController(device, timing)


class TestTimeAccounting:
    def test_activate_advances_time(self):
        mc = make_controller()
        mc.activate(RowAddress(0, 0, 5), actor="attacker")
        assert mc.now_ns == pytest.approx(mc.timing.t_rc_ns)

    def test_hammer_uses_effective_period(self):
        mc = make_controller()
        mc.activate(RowAddress(0, 0, 5), actor="attacker", count=10, hammer=True)
        assert mc.now_ns == pytest.approx(10 * mc.timing.t_act_eff_ns)

    def test_actor_attribution(self):
        mc = make_controller()
        mc.activate(RowAddress(0, 0, 5), actor="attacker", count=3, hammer=True)
        mc.rowclone(RowAddress(0, 0, 1), RowAddress(0, 0, 9), actor="defender")
        assert mc.actor_stats("attacker").count(Command.ACT) == 3
        assert mc.actor_stats("defender").count(Command.AAP) == 1
        assert mc.actor_stats("defender").total_time_ns == pytest.approx(
            mc.timing.t_aap_ns
        )

    def test_advance_time_rejects_negative(self):
        mc = make_controller()
        with pytest.raises(ValueError):
            mc.advance_time(-1.0)


class TestRowHammerDynamics:
    def test_flip_occurs_at_threshold_on_declared_bits(self):
        mc = make_controller(t_rh=50)
        victim = RowAddress(0, 0, 10)
        aggressor = RowAddress(0, 0, 11)
        mc.declare_attack_targets(victim, [3, 17])
        mc.activate(aggressor, actor="attacker", count=50, hammer=True)
        flipped = mc.device.fault_log.flips_in_row(victim)
        assert sorted(e.bit for e in flipped) == [3, 17]

    def test_no_flip_below_threshold(self):
        mc = make_controller(t_rh=50)
        victim = RowAddress(0, 0, 10)
        mc.declare_attack_targets(victim, [3])
        mc.activate(RowAddress(0, 0, 11), actor="attacker", count=49, hammer=True)
        assert mc.device.fault_log.total_flips == 0

    def test_both_neighbours_are_victims(self):
        mc = make_controller(t_rh=10)
        aggressor = RowAddress(0, 0, 10)
        upper = RowAddress(0, 0, 9)
        lower = RowAddress(0, 0, 11)
        mc.declare_attack_targets(upper, [0])
        mc.declare_attack_targets(lower, [1])
        mc.activate(aggressor, actor="attacker", count=10, hammer=True)
        assert len(mc.device.fault_log.flips_in_row(upper)) == 1
        assert len(mc.device.fault_log.flips_in_row(lower)) == 1

    def test_refresh_resets_disturbance(self):
        # Hammering split across a refresh boundary must not flip.
        mc = make_controller(t_rh=100)
        victim = RowAddress(0, 0, 10)
        aggressor = RowAddress(0, 0, 11)
        mc.declare_attack_targets(victim, [0])
        mc.activate(aggressor, actor="attacker", count=60, hammer=True)
        mc.advance_time(mc.ns_until_refresh())  # crosses the refresh boundary
        mc.activate(aggressor, actor="attacker", count=60, hammer=True)
        assert mc.device.fault_log.total_flips == 0
        assert mc.refresh_epoch >= 1

    def test_victim_activation_resets_own_disturbance(self):
        mc = make_controller(t_rh=100)
        victim = RowAddress(0, 0, 10)
        aggressor = RowAddress(0, 0, 11)
        mc.declare_attack_targets(victim, [0])
        mc.activate(aggressor, actor="attacker", count=60, hammer=True)
        mc.activate(victim, actor="defender")  # refreshes the victim
        mc.activate(aggressor, actor="attacker", count=60, hammer=True)
        assert mc.device.fault_log.total_flips == 0

    def test_flip_happens_only_once_per_window(self):
        mc = make_controller(t_rh=10)
        victim = RowAddress(0, 0, 10)
        mc.declare_attack_targets(victim, [5])
        mc.activate(RowAddress(0, 0, 11), actor="attacker", count=30, hammer=True)
        assert len(mc.device.fault_log.flips_in_row(victim)) == 1

    def test_subarray_boundary_blocks_disturbance(self):
        mc = make_controller(t_rh=10)
        # Last row of subarray 0; "next" row lives in subarray 1 and must
        # NOT be disturbed.
        edge = RowAddress(0, 0, 31)
        other_side = RowAddress(0, 1, 0)
        mc.declare_attack_targets(other_side, [0])
        mc.activate(edge, actor="attacker", count=100, hammer=True)
        assert mc.device.fault_log.total_flips == 0

    def test_activate_hook_sees_counts(self):
        mc = make_controller()
        seen = []
        mc.register_activate_hook(lambda addr, t, n: seen.append((addr, n)))
        mc.activate(RowAddress(1, 1, 3), count=7, hammer=True)
        assert seen == [(RowAddress(1, 1, 3), 7)]


class TestRowClone:
    def test_copies_data(self):
        mc = make_controller()
        src = RowAddress(0, 0, 2)
        dst = RowAddress(0, 0, 20)
        payload = np.arange(64, dtype=np.uint8)
        mc.poke_logical(src, payload)
        mc.rowclone(src, dst)
        assert np.array_equal(mc.peek_logical(dst), payload)

    def test_rejects_cross_subarray_fpm(self):
        mc = make_controller()
        with pytest.raises(ValueError):
            mc.rowclone(RowAddress(0, 0, 1), RowAddress(0, 1, 1))

    def test_rejects_self_copy(self):
        mc = make_controller()
        with pytest.raises(ValueError):
            mc.rowclone(RowAddress(0, 0, 1), RowAddress(0, 0, 1))

    def test_copy_refreshes_source_and_destination(self):
        mc = make_controller(t_rh=100)
        src = RowAddress(0, 0, 10)
        mc.activate(RowAddress(0, 0, 11), count=90, hammer=True)  # disturb src
        assert mc.device.disturbance(src) == 90
        mc.rowclone(src, RowAddress(0, 0, 20))
        assert mc.device.disturbance(src) == 0

    def test_psm_copies_across_subarrays(self):
        mc = make_controller()
        src = RowAddress(0, 0, 2)
        dst = RowAddress(1, 1, 7)
        payload = np.full(64, 0xAB, dtype=np.uint8)
        mc.poke_logical(src, payload)
        mc.rowclone_psm(src, dst)
        assert np.array_equal(mc.peek_logical(dst), payload)

    def test_engine_picks_mode(self):
        mc = make_controller()
        engine = RowCloneEngine(mc)
        engine.copy(RowAddress(0, 0, 1), RowAddress(0, 0, 2))
        engine.copy(RowAddress(0, 0, 1), RowAddress(0, 1, 2))
        assert engine.fpm_copies == 1
        assert engine.psm_copies == 1
        assert engine.total_copies == 2

    def test_aap_disturbs_neighbours(self):
        mc = make_controller(t_rh=100)
        src = RowAddress(0, 0, 10)
        dst = RowAddress(0, 0, 20)
        neighbour = RowAddress(0, 0, 9)
        before = mc.device.disturbance(neighbour)
        mc.rowclone(src, dst)
        assert mc.device.disturbance(neighbour) == before + 1


class TestLogicalAccess:
    def test_read_write_roundtrip(self):
        mc = make_controller()
        addr = RowAddress(1, 0, 4)
        payload = np.arange(64, dtype=np.uint8)[::-1].copy()
        mc.write_logical(addr, payload)
        assert np.array_equal(mc.read_logical(addr), payload)

    def test_indirection_redirects_access(self):
        mc = make_controller()
        a = RowAddress(0, 0, 1)
        b = RowAddress(0, 0, 2)
        mc.poke_logical(a, np.full(64, 1, dtype=np.uint8))
        mc.poke_logical(b, np.full(64, 2, dtype=np.uint8))
        # Move the *data*, then record the swap: logical a now lives at
        # physical b.
        data_a = mc.device.read_row(a).copy()
        data_b = mc.device.read_row(b).copy()
        mc.device.write_row(a, data_b)
        mc.device.write_row(b, data_a)
        mc.indirection.swap(a, b)
        assert mc.read_logical(a)[0] == 1
        assert mc.read_logical(b)[0] == 2


class TestProfiledFlipModel:
    def test_only_vulnerable_cells_flip(self):
        geometry = DramGeometry(
            banks=1, subarrays_per_bank=1, rows_per_subarray=16, row_bytes=64
        )
        model = ProfiledFlipModel(row_bits=64 * 8, density=0.05, seed=3)
        device = DramDevice(geometry, flip_model=model)
        mc = MemoryController(device, TimingParams(t_rh=10))
        victim = RowAddress(0, 0, 5)
        rng = np.random.default_rng(0)
        device.fill_random(rng)
        vulnerable, _ = model.profile(victim)
        mc.activate(RowAddress(0, 0, 6), count=10, hammer=True)
        flipped_bits = {e.bit for e in device.fault_log.flips_in_row(victim)}
        assert flipped_bits.issubset(set(int(b) for b in vulnerable))

    def test_profile_is_stable(self):
        model = ProfiledFlipModel(row_bits=512, density=0.1, seed=9)
        row = RowAddress(0, 0, 1)
        bits_a, dirs_a = model.profile(row)
        bits_b, dirs_b = model.profile(row)
        assert np.array_equal(bits_a, bits_b)
        assert np.array_equal(dirs_a, dirs_b)

    def test_density_validation(self):
        with pytest.raises(ValueError):
            ProfiledFlipModel(row_bits=8, density=1.5)
