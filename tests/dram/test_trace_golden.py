"""Golden-trace regression fixtures.

The JSONL traces under ``tests/data/traces/`` are the canonical command
streams of the two golden workloads (``repro trace record``).  These
tests re-record each workload in-process and assert the bytes still
match, then replay the *committed* fixture and assert the reproduced
``CommandStats`` and trace aggregates are identical — any controller
change that alters charging, ordering, or serialization fails here.
"""

import pathlib

import pytest

from repro.dram import TimingChecker, load_trace, stats_payload
from repro.experiments.goldens import GOLDEN_WORKLOADS, record_workload

FIXTURES = pathlib.Path(__file__).parent.parent / "data" / "traces"

CASES = [
    ("fig6-defended", "fig6_defended.jsonl"),
    ("hammer-window", "hammer_window.jsonl"),
]


@pytest.mark.parametrize("workload, filename", CASES)
class TestGoldenTraces:
    def test_fixture_exists(self, workload, filename):
        assert (FIXTURES / filename).is_file()

    def test_recording_is_byte_identical_to_fixture(
        self, workload, filename, tmp_path
    ):
        _, trace = record_workload(workload)
        fresh = trace.save(tmp_path / filename)
        assert fresh.read_bytes() == (FIXTURES / filename).read_bytes()

    def test_replay_reproduces_stats_byte_identically(
        self, workload, filename
    ):
        loaded = load_trace(FIXTURES / filename)
        controller, trace = loaded.replay()
        assert stats_payload(controller) == loaded.stats
        assert trace.aggregates() == loaded.aggregates

    def test_replay_is_timing_legal_under_strict_checker(
        self, workload, filename
    ):
        loaded = load_trace(FIXTURES / filename)
        controller = loaded.build_controller()
        with TimingChecker(controller, mode="strict") as checker:
            loaded.replay(controller=controller)
        assert checker.violations == []
        assert checker.commands_checked > 0

    def test_resaved_replay_is_byte_identical(
        self, workload, filename, tmp_path
    ):
        loaded = load_trace(FIXTURES / filename)
        _, trace = loaded.replay()
        resaved = trace.save(tmp_path / filename)
        assert resaved.read_bytes() == (FIXTURES / filename).read_bytes()


class TestGoldenWorkloadRegistry:
    def test_fixture_set_matches_registry(self):
        assert {name for name, _ in CASES} == set(GOLDEN_WORKLOADS)

    def test_unknown_workload_is_rejected(self):
        with pytest.raises(KeyError, match="unknown trace workload"):
            record_workload("nonesuch")

    def test_recording_under_strict_checker_is_clean(self):
        # Record with a live strict checker attached from command zero:
        # the golden workloads are timing-legal end to end.
        for name, builder in GOLDEN_WORKLOADS.items():
            controller, trace = builder()
            checker = TimingChecker(
                timing=controller.timing, mode="strict"
            )
            for event in _record_to_events(trace.commands):
                checker.observe(event)
            assert checker.violations == [], name


def _record_to_events(records):
    from repro.dram import Command, CommandEvent

    for record in records:
        yield CommandEvent(
            time_ns=record.time_ns,
            command=(
                None if record.command == "IDLE"
                else Command[record.command]
            ),
            actor=record.actor, bank=record.bank,
            subarray=record.subarray, row=record.row, count=record.count,
            hammer=record.hammer, dst_subarray=record.dst_subarray,
            dst_row=record.dst_row, auto=record.auto,
            duration_ns=record.duration_ns,
        )
