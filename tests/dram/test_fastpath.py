"""Controller/mapper fast-path parity and regression tests.

The memory controller keeps a slow path (``fast_path=False``) as the
verifiable fallback; these tests pin the two paths to identical
functional behaviour and guard the memoization against the one thing
that could invalidate it — defense remaps through the indirection table
(they cannot: adjacency is physical).
"""

import numpy as np
import pytest

from repro.dram import (
    DramDevice,
    DramGeometry,
    MemoryController,
    RowAddress,
    TimingParams,
)
from repro.dram.controller import fast_path_default

GEOMETRY = DramGeometry(
    banks=2, subarrays_per_bank=2, rows_per_subarray=32, row_bytes=64
)


def make_controller(fast_path: bool, t_rh: int = 50) -> MemoryController:
    controller = MemoryController(
        DramDevice(GEOMETRY), TimingParams(t_rh=t_rh), fast_path=fast_path
    )
    controller.device.fill_random(np.random.default_rng(7))
    return controller


class TestNeighborMemoization:
    def test_neighbors_match_uncached(self):
        mapper = DramDevice(GEOMETRY).mapper
        for addr in (RowAddress(0, 0, 0), RowAddress(1, 1, 5),
                     RowAddress(0, 1, 31)):
            assert mapper.neighbors(addr) == mapper.compute_neighbors(addr)

    def test_memoization_survives_indirection_remaps(self):
        """Adjacency is physical: remapping logical rows must not change
        (or stale-poison) the memoized neighbour lists."""
        controller = make_controller(fast_path=True)
        mapper = controller.device.mapper
        victim = RowAddress(0, 0, 10)
        before = list(mapper.neighbors(victim))
        # Remap the victim and one of its neighbours somewhere else.
        controller.indirection.swap(victim, RowAddress(0, 0, 20))
        controller.indirection.swap(RowAddress(0, 0, 11), RowAddress(0, 0, 25))
        after = mapper.neighbors(victim)
        assert after == before
        assert after == mapper.compute_neighbors(victim)
        # The remap is visible through the indirection, not the mapper.
        assert controller.indirection.physical(victim) == RowAddress(0, 0, 20)

    def test_validate_still_rejects_bad_addresses(self):
        mapper = DramDevice(GEOMETRY).mapper
        mapper.validate(RowAddress(0, 0, 0))  # warm the memo
        with pytest.raises(ValueError):
            mapper.validate(RowAddress(0, 0, GEOMETRY.rows_per_subarray))
        with pytest.raises(ValueError):
            mapper.validate(RowAddress(GEOMETRY.banks, 0, 0))
        with pytest.raises(ValueError):
            mapper.neighbors(RowAddress(0, GEOMETRY.subarrays_per_bank, 0))

    def test_indirection_version_bumps_on_swap(self):
        controller = make_controller(fast_path=True)
        ind = controller.indirection
        v0 = ind.version
        ind.swap(RowAddress(0, 0, 1), RowAddress(0, 0, 2))
        assert ind.version == v0 + 1
        ind.swap(RowAddress(0, 0, 1), RowAddress(0, 0, 2))  # swap back
        assert ind.version == v0 + 2


def _hammer_script(controller: MemoryController) -> None:
    """A mixed activation/rowclone workload crossing the flip threshold."""
    aggressor = RowAddress(0, 0, 5)
    victim = RowAddress(0, 0, 6)
    controller.declare_attack_targets(victim, [3, 11])
    controller.activate(aggressor, actor="attacker", count=60, hammer=True)
    controller.rowclone(RowAddress(0, 0, 20), RowAddress(0, 0, 22),
                        actor="defender")
    controller.rowclone(RowAddress(0, 0, 22), RowAddress(0, 0, 24),
                        actor="defender")
    controller.activate(RowAddress(1, 1, 9), actor="attacker", count=55,
                        hammer=True)
    controller.advance_time(1000.0)


class TestFastSlowParity:
    def test_identical_state_after_workload(self):
        fast = make_controller(fast_path=True)
        slow = make_controller(fast_path=False)
        _hammer_script(fast)
        _hammer_script(slow)
        assert fast.now_ns == slow.now_ns
        assert fast.stats.counts == slow.stats.counts
        assert fast.stats.total_time_ns == slow.stats.total_time_ns
        assert fast.stats.total_energy_pj == slow.stats.total_energy_pj
        flips_fast = [
            (e.physical_row, e.bit, e.old_value, e.new_value)
            for e in fast.device.fault_log.events
        ]
        flips_slow = [
            (e.physical_row, e.bit, e.old_value, e.new_value)
            for e in slow.device.fault_log.events
        ]
        assert flips_fast == flips_slow
        assert len(flips_fast) == 2  # both declared bits landed
        for bank in range(GEOMETRY.banks):
            for sub in range(GEOMETRY.subarrays_per_bank):
                sa_f = fast.device.banks[bank].subarrays[sub]
                sa_s = slow.device.banks[bank].subarrays[sub]
                np.testing.assert_array_equal(sa_f.rows, sa_s.rows)
                np.testing.assert_array_equal(
                    sa_f.disturbance, sa_s.disturbance
                )

    def test_env_toggle_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DRAM_FAST_PATH", "0")
        assert fast_path_default() is False
        assert MemoryController(
            DramDevice(GEOMETRY), TimingParams()
        ).fast_path is False
        monkeypatch.delenv("REPRO_DRAM_FAST_PATH")
        assert fast_path_default() is True

    def test_rowclone_still_validates(self):
        controller = make_controller(fast_path=True)
        with pytest.raises(ValueError):
            controller.rowclone(RowAddress(0, 0, 1), RowAddress(0, 1, 1))
        with pytest.raises(ValueError):
            controller.rowclone(RowAddress(0, 0, 1), RowAddress(0, 0, 1))
        with pytest.raises(ValueError):
            controller.rowclone(RowAddress(0, 0, 1), RowAddress(0, 0, 99))


class TestDirtyTracking:
    def test_poke_and_write_mark_dirty(self):
        controller = make_controller(fast_path=True)
        row = RowAddress(0, 1, 4)
        version = controller.content_version
        controller.poke_logical(row, np.zeros(GEOMETRY.row_bytes, np.uint8))
        assert controller.dirty_rows_since(version) == [row]
        version = controller.content_version
        controller.write_logical(
            row, np.ones(GEOMETRY.row_bytes, np.uint8), actor="system"
        )
        assert row in controller.dirty_rows_since(version)
        assert controller.dirty_rows_since(controller.content_version) == []

    def test_flip_marks_victim_logical_row_dirty(self):
        controller = make_controller(fast_path=True)
        victim = RowAddress(0, 0, 6)
        # Remap the victim's data elsewhere so physical != logical.
        moved = RowAddress(0, 0, 15)
        controller.indirection.swap(victim, moved)
        version = controller.content_version
        physical = controller.indirection.physical(victim)
        controller.declare_attack_targets(physical, [0])
        aggressor = physical.with_row(physical.row - 1)
        controller.activate(aggressor, actor="attacker", count=60, hammer=True)
        dirty = controller.dirty_rows_since(version)
        assert victim in dirty  # the *logical* owner of the flipped data

    def test_rowclone_marks_destination_dirty(self):
        controller = make_controller(fast_path=True)
        version = controller.content_version
        controller.rowclone(RowAddress(0, 0, 2), RowAddress(0, 0, 8))
        assert RowAddress(0, 0, 8) in controller.dirty_rows_since(version)


class TestVectorizedFlipBits:
    def test_matches_naive_reference(self):
        rng = np.random.default_rng(3)
        sa = make_controller(fast_path=True).device.banks[0].subarrays[0]
        reference = sa.rows[4].copy()
        bits = sorted(rng.choice(GEOMETRY.row_bytes * 8, 17, replace=False))
        events = sa.flip_bits(4, [int(b) for b in bits])
        assert [e[0] for e in events] == list(bits)
        for bit, old, new in events:
            byte_index, bit_in_byte = divmod(bit, 8)
            assert old == (int(reference[byte_index]) >> bit_in_byte) & 1
            assert new == 1 - old
            reference[byte_index] ^= 1 << bit_in_byte
        np.testing.assert_array_equal(sa.rows[4], reference)

    def test_empty_and_invalid(self):
        sa = make_controller(fast_path=True).device.banks[0].subarrays[0]
        assert sa.flip_bits(0, []) == []
        with pytest.raises(ValueError):
            sa.flip_bits(0, [GEOMETRY.row_bytes * 8])
        with pytest.raises(ValueError):
            sa.flip_bits(0, [-1])

    def test_duplicate_bits_report_sequential_events(self):
        """Duplicates cancel in the data, but events must alternate
        old/new exactly as sequential application reported them."""
        sa = make_controller(fast_path=True).device.banks[0].subarrays[0]
        before = sa.rows[2].copy()
        old = (int(before[0]) >> 5) & 1
        events = sa.flip_bits(2, [5, 5, 5])
        assert events == [
            (5, old, 1 - old), (5, 1 - old, old), (5, old, 1 - old)
        ]
        # Odd number of toggles: the bit ends flipped once.
        assert ((int(sa.rows[2][0]) >> 5) & 1) == 1 - old
        events = sa.flip_bits(2, [9, 9])
        assert events[0][1] == 1 - events[1][1]
        np.testing.assert_array_equal(sa.rows[2][1:], before[1:])
