"""Tests for command-trace recording, lifecycle, and replay."""

import numpy as np
import pytest

from repro.dram import (
    Command,
    CommandTrace,
    DramDevice,
    DramGeometry,
    MemoryController,
    RowAddress,
    TimingParams,
    load_trace,
    stats_payload,
)

GEOMETRY = DramGeometry(
    banks=2, subarrays_per_bank=2, rows_per_subarray=32, row_bytes=32
)


def make_controller(t_rh=1000, seed=0):
    controller = MemoryController(
        DramDevice(GEOMETRY), TimingParams(t_rh=t_rh)
    )
    controller.device.fill_random(np.random.default_rng(seed))
    return controller


def run_workload(controller):
    """A small stream covering every record kind."""
    controller.activate(RowAddress(0, 0, 5), actor="attacker", count=200,
                        hammer=True)
    controller.rowclone(RowAddress(0, 0, 2), RowAddress(0, 0, 3),
                        actor="defender")
    controller.generate_random_row(actor="defender")
    data = controller.read_logical(RowAddress(1, 1, 3))
    controller.write_logical(RowAddress(1, 1, 3), data)
    controller.precharge(1)
    controller.advance_time(controller.ns_until_refresh())


class TestRecording:
    def test_all_command_kinds_recorded(self):
        controller = make_controller()
        trace = CommandTrace(controller)
        run_workload(controller)
        trace.close()
        kinds = {record.command for record in trace.commands}
        # The workload crosses a refresh boundary, so the controller's
        # auto-REF lands in the stream too.
        assert {"ACT", "AAP", "RNG", "RD", "WR", "PRE", "IDLE",
                "REF"} <= kinds
        auto_refs = [r for r in trace.commands if r.command == "REF"]
        assert all(r.auto for r in auto_refs)

    def test_records_carry_coordinates_and_issue_times(self):
        controller = make_controller()
        trace = CommandTrace(controller)
        controller.activate(RowAddress(0, 1, 5), actor="attacker", count=3,
                            hammer=True)
        trace.close()
        [record] = [r for r in trace.commands if r.command == "ACT"]
        assert (record.bank, record.subarray, record.row) == (0, 1, 5)
        assert record.count == 3 and record.hammer
        assert record.actor == "attacker"
        assert record.time_ns == 0.0  # issue time, before charging

    def test_aap_records_destination(self):
        controller = make_controller()
        trace = CommandTrace(controller)
        controller.rowclone(RowAddress(0, 1, 2), RowAddress(0, 1, 7))
        trace.close()
        [record] = [r for r in trace.commands if r.command == "AAP"]
        assert (record.dst_subarray, record.dst_row) == (1, 7)

    def test_summary_counts_commands(self):
        controller = make_controller()
        trace = CommandTrace(controller)
        controller.activate(RowAddress(0, 0, 2))
        trace.close()
        summary = trace.summary()
        assert summary["commands_recorded"] == 1
        assert summary["total_activations"] == 1


class TestLifecycle:
    def test_closed_trace_stops_accumulating(self):
        controller = make_controller()
        trace = CommandTrace(controller)
        controller.activate(RowAddress(0, 0, 2))
        assert len(trace.commands) == 1
        assert trace.total_activations == 1
        trace.close()
        assert trace.closed
        controller.activate(RowAddress(0, 0, 4))
        assert len(trace.commands) == 1
        assert trace.total_activations == 1

    def test_close_is_idempotent(self):
        controller = make_controller()
        trace = CommandTrace(controller)
        trace.close()
        trace.close()
        assert trace.closed

    def test_context_manager_closes(self):
        controller = make_controller()
        with CommandTrace(controller) as trace:
            controller.activate(RowAddress(0, 0, 2))
        assert trace.closed
        controller.activate(RowAddress(0, 0, 4))
        assert trace.total_activations == 1

    def test_two_traces_close_independently(self):
        controller = make_controller()
        first = CommandTrace(controller)
        second = CommandTrace(controller)
        first.close()
        controller.activate(RowAddress(0, 0, 2))
        assert len(first.commands) == 0
        assert len(second.commands) == 1
        second.close()


class TestWindowEdgeCases:
    def test_window_one_keeps_only_latest_entry(self):
        controller = make_controller()
        trace = CommandTrace(controller, window=1)
        controller.activate(RowAddress(0, 0, 2))
        controller.activate(RowAddress(0, 0, 4))
        trace.close()
        assert len(trace.entries) == 1
        assert trace.entries[0].physical.row == 4
        # Aggregates and the command stream keep the full history.
        assert trace.total_activations == 2
        assert len(trace.commands) == 2

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            CommandTrace(make_controller(), window=0)

    def test_span_query_only_sees_retained_window(self):
        controller = make_controller()
        trace = CommandTrace(controller, window=2)
        times = []
        for row in (2, 4, 6):
            times.append(controller.now_ns)
            controller.activate(RowAddress(0, 0, row))
        trace.close()
        # The first burst was evicted: a span covering all three only
        # counts the two retained entries (documented behaviour).
        assert trace.activations_in_span(0.0, controller.now_ns) == 2
        with pytest.raises(ValueError):
            trace.activations_in_span(10.0, 0.0)


class TestSaveLoadReplay:
    def test_round_trip_preserves_records_and_stats(self, tmp_path):
        controller = make_controller()
        trace = CommandTrace(controller)
        run_workload(controller)
        trace.close()
        path = trace.save(tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert loaded.header["format"] == 1
        assert loaded.geometry == GEOMETRY
        assert loaded.timing == controller.timing
        assert [r.to_json() for r in loaded.records] == [
            r.to_json() for r in trace.commands
        ]
        assert loaded.stats == stats_payload(controller)
        assert loaded.aggregates == trace.aggregates()

    def test_replay_reproduces_stats_exactly(self, tmp_path):
        controller = make_controller()
        trace = CommandTrace(controller)
        run_workload(controller)
        trace.close()
        loaded = load_trace(trace.save(tmp_path / "trace.jsonl"))
        replayed, replay_trace = loaded.replay()
        assert stats_payload(replayed) == loaded.stats
        assert replay_trace.aggregates() == loaded.aggregates
        assert replay_trace.closed

    def test_replayed_file_is_byte_identical(self, tmp_path):
        controller = make_controller()
        trace = CommandTrace(controller)
        run_workload(controller)
        trace.close()
        original = trace.save(tmp_path / "a.jsonl")
        _, replay_trace = load_trace(original).replay()
        duplicate = replay_trace.save(tmp_path / "b.jsonl")
        assert original.read_bytes() == duplicate.read_bytes()

    def test_replay_covers_psm_fallback(self, tmp_path):
        # A cross-subarray PSM copy exercises the ACT-RD-WR record
        # encoding (one ACT record of count=2, preserving float-exact
        # stats arithmetic on replay).
        controller = make_controller(seed=3)
        trace = CommandTrace(controller)
        controller.rowclone_psm(RowAddress(0, 0, 2), RowAddress(0, 1, 7))
        trace.close()
        assert {r.command for r in trace.commands} == {"ACT", "RD", "WR"}
        loaded = load_trace(trace.save(tmp_path / "psm.jsonl"))
        replayed, _ = loaded.replay()
        assert stats_payload(replayed) == loaded.stats

    def test_load_rejects_bad_format_and_truncation(self, tmp_path):
        controller = make_controller()
        trace = CommandTrace(controller)
        controller.activate(RowAddress(0, 0, 2))
        trace.close()
        path = trace.save(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()

        bad = tmp_path / "bad.jsonl"
        bad.write_text(lines[0].replace('"format":1', '"format":99') + "\n"
                       + "\n".join(lines[1:]) + "\n")
        with pytest.raises(ValueError, match="unsupported trace format"):
            load_trace(bad)

        headless = tmp_path / "headless.jsonl"
        headless.write_text("\n".join(lines[1:]) + "\n")
        with pytest.raises(ValueError, match="missing trace header"):
            load_trace(headless)

        footless = tmp_path / "footless.jsonl"
        footless.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="missing trace stats"):
            load_trace(footless)

    def test_charge_command_rejects_state_mutating_commands(self):
        controller = make_controller()
        for command in (Command.ACT, Command.AAP, Command.PRE):
            with pytest.raises(ValueError):
                controller.charge_command(command)
        with pytest.raises(ValueError):
            controller.charge_command(Command.RD, count=0)
