"""Property-based and fuzz tests for DRAM + swap invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SwapEngine
from repro.dram import (
    DramDevice,
    DramGeometry,
    MemoryController,
    RowAddress,
    TimingParams,
)

GEOMETRY = DramGeometry(
    banks=2, subarrays_per_bank=2, rows_per_subarray=24, row_bytes=32
)


def make_controller(t_rh=10**9):
    """High threshold: these tests exercise data movement, not flips."""
    mc = MemoryController(DramDevice(GEOMETRY), TimingParams(t_rh=t_rh))
    mc.device.fill_random(np.random.default_rng(7))
    return mc


def snapshot_logical(mc, rows):
    return {row: mc.peek_logical(row).copy() for row in rows}


data_rows = st.integers(0, GEOMETRY.rows_per_subarray - 3)


class TestSwapChainsPreserveData:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 1), data_rows),
            min_size=1,
            max_size=12,
        ),
        st.integers(0, 2**31 - 1),
    )
    def test_arbitrary_swap_sequences(self, targets, seed):
        """Any sequence of four-step swaps leaves every logical row's data
        intact (the defense must be transparent to software)."""
        mc = make_controller()
        engine = SwapEngine(mc, reserved_rows=2)
        all_rows = [
            RowAddress(b, s, r)
            for b in range(GEOMETRY.banks)
            for s in range(GEOMETRY.subarrays_per_bank)
            for r in range(GEOMETRY.rows_per_subarray - 2)
        ]
        before = snapshot_logical(mc, all_rows)
        rng = np.random.default_rng(seed)
        for bank, subarray, row in targets:
            engine.swap_target(RowAddress(bank, subarray, row), rng)
        for row, data in before.items():
            np.testing.assert_array_equal(mc.peek_logical(row), data)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**31 - 1))
    def test_swaps_interleaved_with_writes(self, seed):
        """Writes through the logical interface land on the right data even
        while the defender keeps relocating rows underneath."""
        mc = make_controller()
        engine = SwapEngine(mc, reserved_rows=2)
        rng = np.random.default_rng(seed)
        row = RowAddress(0, 0, 5)
        expected = None
        for i in range(8):
            payload = np.full(GEOMETRY.row_bytes, i + 1, dtype=np.uint8)
            mc.write_logical(row, payload)
            expected = payload
            engine.swap_target(row, rng)
            np.testing.assert_array_equal(mc.peek_logical(row), expected)


class TestDisturbanceInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.tuples(data_rows, st.integers(1, 50)), min_size=1,
                 max_size=10)
    )
    def test_disturbance_counts_neighbour_activations(self, bursts):
        """When the victim itself is never activated, its disturbance is
        exactly the sum of its neighbours' activation counts."""
        mc = make_controller()
        victim = RowAddress(0, 0, 10)
        for row, count in bursts:
            mc.activate(RowAddress(0, 0, row), count=count, hammer=True)
        if all(row != victim.row for row, _ in bursts):
            expected = sum(
                count for row, count in bursts if abs(row - victim.row) == 1
            )
            assert mc.device.disturbance(victim) == expected

    def test_disturbance_never_negative(self):
        mc = make_controller()
        rng = np.random.default_rng(0)
        for _ in range(50):
            row = RowAddress(
                int(rng.integers(0, GEOMETRY.banks)),
                int(rng.integers(0, GEOMETRY.subarrays_per_bank)),
                int(rng.integers(0, GEOMETRY.rows_per_subarray)),
            )
            mc.activate(row, count=int(rng.integers(1, 20)), hammer=True)
        for bank in mc.device.banks:
            for sa in bank.subarrays:
                assert (sa.disturbance >= 0).all()


class TestTimeMonotonicity:
    def test_clock_never_goes_backwards(self):
        mc = make_controller(t_rh=100)
        engine = SwapEngine(mc, reserved_rows=2)
        rng = np.random.default_rng(1)
        previous = mc.now_ns
        for i in range(30):
            if i % 3 == 0:
                engine.swap_target(RowAddress(0, 0, 4), rng)
            else:
                mc.activate(RowAddress(0, 0, 8), count=10, hammer=True)
            assert mc.now_ns >= previous
            previous = mc.now_ns

    def test_refresh_epoch_tracks_time(self):
        mc = make_controller()
        t_ref = mc.timing.t_ref_ns
        mc.advance_time(3.5 * t_ref)
        assert mc.refresh_epoch == 3

    def test_energy_accumulates(self):
        mc = make_controller()
        before = mc.stats.total_energy_pj
        mc.activate(RowAddress(0, 0, 1), count=100, hammer=True)
        assert mc.stats.total_energy_pj > before
