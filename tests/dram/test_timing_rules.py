"""Tests for the DDR timing-rule checker.

Synthetic-stream units drive ``TimingChecker.observe`` directly with
hand-built :class:`CommandEvent` streams (one per rule); integration
tests attach a strict checker to live controllers running the real
defended/attack workloads and assert the charged streams are clean.
"""

import numpy as np
import pytest

from repro.core import SwapEngine
from repro.dram import (
    Command,
    CommandEvent,
    DramDevice,
    DramGeometry,
    MemoryController,
    RowAddress,
    RULE_NAMES,
    TimingChecker,
    TimingParams,
    TimingViolation,
)

TIMING = TimingParams()

GEOMETRY = DramGeometry(
    banks=2, subarrays_per_bank=2, rows_per_subarray=32, row_bytes=32
)


def act(t, bank=0, count=1, hammer=False):
    return CommandEvent(
        time_ns=t, command=Command.ACT, bank=bank, subarray=0, row=1,
        count=count, hammer=hammer,
    )


def pre(t, bank=0):
    return CommandEvent(time_ns=t, command=Command.PRE, bank=bank)


def rd(t, bank=0):
    return CommandEvent(
        time_ns=t, command=Command.RD, bank=bank, subarray=0, row=1
    )


def wr(t, bank=0):
    return CommandEvent(
        time_ns=t, command=Command.WR, bank=bank, subarray=0, row=1
    )


def ref(t, auto=False):
    return CommandEvent(time_ns=t, command=Command.REF, auto=auto)


def audit(*events, timing=TIMING):
    checker = TimingChecker(timing=timing, mode="audit")
    for event in events:
        checker.observe(event)
    return checker


def strict(*events, timing=TIMING):
    checker = TimingChecker(timing=timing, mode="strict")
    for event in events:
        checker.observe(event)
    return checker


class TestConstruction:
    def test_requires_controller_or_timing(self):
        with pytest.raises(ValueError):
            TimingChecker()

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            TimingChecker(timing=TIMING, mode="lenient")

    def test_rule_names_cover_every_rule(self):
        assert set(RULE_NAMES) == {
            "tRC", "tRP", "tRAS", "tRCD", "tWR", "tFAW", "tREFI", "tRFC"
        }


class TestPerRule:
    """One injected violation per rule; the right rule must be named."""

    def test_trp_early_act_after_pre(self):
        checker = audit(act(0.0), pre(50.0), act(55.0))
        assert [v.rule for v in checker.violations] == ["tRP"]

    def test_trc_early_act_after_act(self):
        checker = audit(act(0.0), act(10.0))
        assert [v.rule for v in checker.violations] == ["tRC"]

    def test_trc_burst_internal_spacing(self):
        # A non-hammer burst runs at t_rc per ACT and is legal; a checker
        # fed a burst claiming a shorter period flags the burst itself.
        fast = TimingParams(t_act_eff_ns=10.0)
        checker = TimingChecker(timing=fast, mode="audit")
        checker.observe(act(0.0, count=3, hammer=True))
        assert "tRC" in checker.violation_counts

    def test_tras_early_pre_after_act(self):
        checker = audit(act(0.0), pre(10.0))
        assert [v.rule for v in checker.violations] == ["tRAS"]

    def test_trcd_early_read_after_act(self):
        checker = audit(act(0.0), rd(5.0))
        assert [v.rule for v in checker.violations] == ["tRCD"]

    def test_twr_early_pre_after_write(self):
        checker = audit(act(0.0), wr(50.0), pre(55.0))
        assert [v.rule for v in checker.violations] == ["tWR"]

    def test_tfaw_fifth_act_inside_window(self):
        # Five single ACTs on distinct banks 5 ns apart: per-bank rules
        # stay silent, the device-wide four-activation window trips.
        events = [
            CommandEvent(time_ns=5.0 * i, command=Command.ACT, bank=i,
                         subarray=0, row=i)
            for i in range(5)
        ]
        checker = audit(*events)
        assert [v.rule for v in checker.violations] == ["tFAW"]

    def test_trefi_missed_refresh(self):
        checker = audit(act(0.0), act(65e6))
        assert [v.rule for v in checker.violations] == ["tREFI"]

    def test_trfc_command_too_soon_after_explicit_ref(self):
        checker = audit(ref(0.0), act(100.0))
        assert "tRFC" in [v.rule for v in checker.violations]

    def test_auto_ref_is_exempt_from_trfc(self):
        checker = audit(ref(0.0, auto=True), act(100.0))
        assert checker.violations == []

    def test_auto_ref_rearms_refresh_deadline(self):
        checker = audit(act(0.0), ref(64e6, auto=True), act(65e6))
        assert checker.violations == []


class TestLegalStreams:
    def test_spaced_commands_are_clean(self):
        checker = audit(
            act(0.0), rd(50.0), wr(100.0), pre(150.0), act(200.0),
            pre(250.0),
        )
        assert checker.violations == []
        assert checker.commands_checked == 6

    def test_hammer_burst_is_legal(self):
        # T_ACT = 118 ns per hammer activation clears every window.
        checker = audit(act(0.0, count=1000, hammer=True))
        assert checker.violations == []

    def test_back_to_back_aaps_are_legal(self):
        events = [
            CommandEvent(time_ns=90.0 * i, command=Command.AAP, bank=0,
                         subarray=0, row=2, dst_subarray=0, dst_row=3)
            for i in range(6)
        ]
        checker = audit(*events)
        assert checker.violations == []

    def test_act_too_soon_after_aap_violates_trc(self):
        # The AAP occupies the bank for t_aap; an ACT at t_aap - 10 is
        # inside the published row cycle.
        checker = audit(
            CommandEvent(time_ns=0.0, command=Command.AAP, bank=0,
                         subarray=0, row=2, dst_subarray=0, dst_row=3),
            act(TIMING.t_aap_ns - 10.0),
        )
        assert [v.rule for v in checker.violations] == ["tRC"]

    def test_idle_and_rng_events_are_ignored(self):
        checker = audit(
            CommandEvent(time_ns=0.0, command=None, duration_ns=5.0),
            CommandEvent(time_ns=5.0, command=Command.RNG),
        )
        assert checker.commands_checked == 0
        assert checker.violations == []


class TestModes:
    def test_strict_raises_at_offending_command(self):
        with pytest.raises(TimingViolation) as excinfo:
            strict(act(0.0), act(10.0))
        assert excinfo.value.rule == "tRC"
        assert "tRC" in str(excinfo.value)

    def test_audit_collects_and_assert_clean_raises(self):
        checker = audit(act(0.0), act(10.0), act(20.0))
        assert len(checker.violations) == 2
        assert checker.violation_counts == {"tRC": 2}
        with pytest.raises(TimingViolation):
            checker.assert_clean()

    def test_summary(self):
        checker = audit(act(0.0), act(10.0))
        summary = checker.summary()
        assert summary["mode"] == "audit"
        assert summary["commands_checked"] == 2
        assert summary["violations"] == 1
        assert summary["by_rule"] == {"tRC": 1}

    def test_violation_describe_names_rule_and_bank(self):
        checker = audit(act(0.0), act(10.0))
        text = checker.violations[0].describe()
        assert "tRC" in text and "bank 0" in text


def make_controller(t_rh=1000, seed=0):
    controller = MemoryController(
        DramDevice(GEOMETRY), TimingParams(t_rh=t_rh)
    )
    controller.device.fill_random(np.random.default_rng(seed))
    return controller


class TestLiveController:
    """Strict checker attached to real charged workloads: zero violations."""

    def test_defended_swap_chain_is_clean(self):
        controller = make_controller()
        with TimingChecker(controller) as checker:
            engine = SwapEngine(controller, reserved_rows=2, actor="defender")
            rng = np.random.default_rng(1)
            targets = [RowAddress(0, 0, r) for r in range(2, 10, 2)]
            non_targets = [RowAddress(0, 0, r) for r in range(12, 20, 2)]
            for target, nt in zip(targets, non_targets):
                engine.swap_target(target, rng, non_target_logical=nt,
                                   exclude=set(targets), pipelined=True)
        assert checker.violations == []
        assert checker.commands_checked > 0

    def test_hammer_window_with_refresh_crossing_is_clean(self):
        controller = make_controller(t_rh=2000)
        with TimingChecker(controller) as checker:
            controller.activate(
                RowAddress(0, 0, 5), actor="attacker", count=2000,
                hammer=True,
            )
            controller.advance_time(controller.ns_until_refresh())
            controller.activate(RowAddress(1, 1, 3), actor="attacker")
            controller.precharge(1, actor="attacker")
        assert checker.violations == []

    def test_shadow_defense_traffic_is_clean(self):
        from repro.defenses.shadow import Shadow

        controller = make_controller(t_rh=64)
        defense = Shadow(controller, trigger_fraction=0.5)
        with TimingChecker(controller) as checker:
            controller.activate(
                RowAddress(0, 0, 5), actor="attacker", count=64, hammer=True
            )
        assert defense.stats.reactions > 0
        assert checker.violations == []
        defense.close()

    def test_explicit_ref_through_charge_command(self):
        controller = make_controller()
        with TimingChecker(controller, mode="audit") as checker:
            controller.charge_command(Command.REF)
            controller.advance_time(controller.timing.t_rfc_ns)
            controller.activate(RowAddress(0, 0, 2))
        assert checker.violations == []

    def test_attach_mid_run_adopts_refresh_phase(self):
        # A checker attached after epochs elapsed must not misread the
        # clock as a missed refresh.
        controller = make_controller()
        controller.advance_time(3 * controller.timing.t_ref_ns + 50.0)
        with TimingChecker(controller) as checker:
            controller.activate(RowAddress(0, 0, 2))
        assert checker.violations == []

    def test_strict_raise_points_at_issuing_call(self):
        controller = make_controller()
        # Sabotage: drive the checker with an event the controller never
        # charged, as a mis-accounted path would.
        checker = TimingChecker(controller)
        controller.activate(RowAddress(0, 0, 2))
        with pytest.raises(TimingViolation):
            checker.observe(act(controller.now_ns - 40.0))
        checker.close()

    def test_close_stops_checking(self):
        controller = make_controller()
        checker = TimingChecker(controller)
        controller.activate(RowAddress(0, 0, 2))
        seen = checker.commands_checked
        checker.close()
        checker.close()  # idempotent
        assert checker.closed
        controller.activate(RowAddress(0, 0, 4))
        assert checker.commands_checked == seen
