"""End-to-end tests: DNN-Defender against the RowHammer attack driver."""

import numpy as np
import pytest

from repro.attacks import (
    BfaConfig,
    RowHammerAttacker,
    semi_white_box_attack,
    white_box_adaptive_attack,
)
from repro.core import DefendedDeployment, DefenderConfig, DNNDefender
from repro.dram import DramDevice, DramGeometry, MemoryController, TimingParams
from repro.mapping import build_protection_plan
from repro.nn.quant import BitLocation

GEOMETRY = DramGeometry(
    banks=2, subarrays_per_bank=4, rows_per_subarray=64, row_bytes=128
)
TIMING = TimingParams(t_rh=1000)


@pytest.fixture
def deployment(fresh_model, tiny_dataset):
    return DefendedDeployment.build(
        fresh_model,
        tiny_dataset,
        geometry=GEOMETRY,
        timing=TIMING,
        profile_rounds=2,
        profile_config=BfaConfig(max_iterations=5),
        attack_batch_size=96,
        seed=0,
    )


class TestDeploymentWiring:
    def test_profile_found_bits_and_rows(self, deployment):
        assert deployment.protection.num_secured_bits > 0
        assert deployment.protection.plan.num_target_rows > 0

    def test_dram_holds_model(self, deployment):
        snap = deployment.qmodel.snapshot()
        deployment.layout.sync_model_from_dram()
        assert deployment.qmodel.hamming_distance_from(snap) == 0

    def test_accuracy_unaffected_by_defense_deployment(
        self, deployment, tiny_dataset
    ):
        # Table 3's headline: clean accuracy identical with defense (91.71 ->
        # 91.71 in the paper; here: unchanged from deployment).
        acc = deployment.accuracy()
        assert acc > 0.75


class TestHammerWithoutDefense:
    def test_undefended_flip_lands(self, fresh_model, tiny_dataset):
        from repro.nn import QuantizedModel
        from repro.mapping import WeightLayout

        qmodel = QuantizedModel(fresh_model)
        controller = MemoryController(DramDevice(GEOMETRY), TIMING)
        layout = WeightLayout(qmodel, controller, seed=0)
        attacker = RowHammerAttacker(controller, layout)
        loc = BitLocation(0, 0, 7)
        before = qmodel.bit_value(loc)
        assert attacker.attempt_flip(loc)
        assert qmodel.bit_value(loc) == 1 - before

    def test_partial_hammering_below_threshold_fails(self, fresh_model):
        """Direct bursts below T_RH leave the declared bit unflipped."""
        from repro.nn import QuantizedModel
        from repro.mapping import WeightLayout

        qmodel = QuantizedModel(fresh_model)
        controller = MemoryController(
            DramDevice(GEOMETRY), TimingParams(t_rh=1000)
        )
        layout = WeightLayout(qmodel, controller, seed=0)
        loc = BitLocation(0, 0, 7)
        logical_row, bit_in_row = layout.locate_bit(loc)
        physical = controller.indirection.physical(logical_row)
        controller.declare_attack_targets(physical, [bit_in_row])
        aggressor = controller.device.mapper.neighbors(physical)[-1]
        before = qmodel.bit_value(loc)
        controller.activate(aggressor, actor="attacker", count=999,
                            hammer=True)
        layout.sync_model_from_dram()
        assert qmodel.bit_value(loc) == before
        # The thousandth activation crosses the threshold.
        controller.activate(aggressor, actor="attacker", count=1, hammer=True)
        layout.sync_model_from_dram()
        assert qmodel.bit_value(loc) == 1 - before


class TestDefendedFlips:
    def test_secured_bit_is_blocked_through_dram(self, deployment):
        secured = sorted(deployment.defender.secured_bits)[0]
        executor = deployment.hammer_executor()
        before = deployment.qmodel.bit_value(secured)
        assert not executor.execute(secured)
        assert deployment.qmodel.bit_value(secured) == before
        assert executor.blocked == 1
        assert deployment.defender.stats.swaps_executed > 0

    def test_unprotected_bit_still_flips(self, deployment):
        executor = deployment.hammer_executor()
        secured_rows = set(deployment.protection.plan.target_rows)
        # Find a weight bit living in a non-target row.
        candidate = None
        for slot in deployment.layout.slots:
            if slot.logical_row not in secured_rows:
                candidate = deployment.layout.bits_in_row(slot.logical_row)[7]
                break
        assert candidate is not None
        assert executor.execute(candidate)

    def test_logical_and_dram_paths_agree(self, deployment):
        secured = sorted(deployment.defender.secured_bits)[0]
        unsecured = None
        secured_rows = set(deployment.protection.plan.target_rows)
        for slot in deployment.layout.slots:
            if slot.logical_row not in secured_rows:
                unsecured = deployment.layout.bits_in_row(slot.logical_row)[3]
                break
        logical = deployment.logical_executor()
        dram = deployment.hammer_executor()
        assert logical.execute(secured) == dram.execute(secured) == False  # noqa: E712
        # Undo logical state drift before comparing the unsecured bit.
        assert logical.execute(unsecured) is True
        deployment.qmodel.flip_bit(unsecured)  # revert logical's flip
        assert dram.execute(unsecured) is True

    def test_multiple_windows_keep_blocking(self, deployment):
        secured = sorted(deployment.defender.secured_bits)[0]
        executor = deployment.hammer_executor()
        for _ in range(3):
            assert not executor.execute(secured)
        assert executor.blocked == 3


class TestDefenderScheduling:
    def test_non_targets_get_refreshed(self, deployment):
        executor = deployment.hammer_executor()
        executor.execute(sorted(deployment.defender.secured_bits)[0])
        assert deployment.defender.stats.non_targets_refreshed > 0

    def test_latency_metric_positive_once_running(self, deployment):
        executor = deployment.hammer_executor()
        executor.execute(sorted(deployment.defender.secured_bits)[0])
        assert deployment.defender.defender_busy_ns > 0
        assert deployment.defender.latency_per_tref_ms() > 0

    def test_overloaded_defender_defers_swaps(self, fresh_model, tiny_dataset):
        # Tiny hammer window: budget of very few swaps per pass.
        from repro.nn import QuantizedModel
        from repro.mapping import WeightLayout

        timing = TimingParams(t_rh=20)  # window = 20 * 118ns = 2.36 us
        qmodel = QuantizedModel(fresh_model)
        controller = MemoryController(DramDevice(GEOMETRY), timing)
        layout = WeightLayout(qmodel, controller, seed=0)
        # Protect many rows in one bank to exceed the per-pass budget.
        rows = [r for r in layout.weight_rows() if r.bank == 0][:24]
        bits = set()
        for row in rows:
            bits.update(layout.bits_in_row(row)[:1])
        plan = build_protection_plan(layout, bits)
        defender = DNNDefender(controller, plan)
        budget = defender.bank_budget()
        assert budget < len(rows)
        defender.run_window()
        assert defender.stats.deferred_swaps > 0
        assert defender.stats.swaps_executed <= budget * GEOMETRY.banks

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DefenderConfig(period_fraction=0.0)
        with pytest.raises(ValueError):
            DefenderConfig(period_fraction=1.5)


class TestAttackScenarios:
    def test_semi_white_box_attack_fails(self, deployment):
        """Section 5.2: a defense-unaware BFA achieves no accuracy drop
        when its targets are the profiled (and therefore secured) bits."""
        rng = np.random.default_rng(0)
        x, y = deployment.dataset.attack_batch(96, rng)
        executor = deployment.logical_executor()
        result = semi_white_box_attack(
            deployment.qmodel, x, y, executor,
            config=BfaConfig(max_iterations=5),
            eval_x=deployment.dataset.x_test,
            eval_y=deployment.dataset.y_test,
        )
        assert result.planned_sequence, "attack should have found targets"
        assert len(result.blocked) >= len(result.landed)
        assert result.accuracy_drop <= 0.08

    def test_white_box_needs_extra_flips(self, deployment):
        """Fig. 9's mechanism: skipping secured bits forces the adaptive
        attacker onto weaker bits."""
        rng = np.random.default_rng(1)
        x, y = deployment.dataset.attack_batch(96, rng)
        secured = deployment.defender.secured_bits
        executor = deployment.logical_executor()
        result = white_box_adaptive_attack(
            deployment.qmodel, x, y, executor, secured,
            config=BfaConfig(max_iterations=6),
            eval_x=deployment.dataset.x_test,
            eval_y=deployment.dataset.y_test,
        )
        # No secured bit was flipped.
        assert not set(result.flips) & secured
