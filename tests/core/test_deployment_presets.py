"""Tests for the deployment builder, presets, and report formatting."""

import numpy as np
import pytest

from repro.analysis import (
    AccuracyCurve,
    SecuredBitsCurve,
    format_accuracy_curves,
    format_secured_bits_curves,
    format_latency_sweep,
    format_security_sweep,
    latency_sweep,
    security_sweep,
)
from repro.analysis.defense_eval import expand_bits_to_rows
from repro.nn.quant import BitLocation
from repro.utils.tabulate import format_table


class TestExpandBitsToRows:
    def test_expansion_covers_block(self, fresh_quantized):
        bits = {BitLocation(0, 5, 7)}
        expanded = expand_bits_to_rows(fresh_quantized, bits,
                                       weights_per_row=16)
        assert BitLocation(0, 0, 0) in expanded
        assert BitLocation(0, 15, 7) in expanded
        assert BitLocation(0, 16, 0) not in expanded
        assert len(expanded) == 16 * 8

    def test_expansion_clamps_at_layer_end(self, fresh_quantized):
        layer = fresh_quantized.layer(0)
        last = layer.num_weights - 1
        expanded = expand_bits_to_rows(
            fresh_quantized, {BitLocation(0, last, 0)}, weights_per_row=1000
        )
        assert all(loc.index < layer.num_weights for loc in expanded)

    def test_validates_weights_per_row(self, fresh_quantized):
        with pytest.raises(ValueError):
            expand_bits_to_rows(fresh_quantized, set(), weights_per_row=0)

    def test_superset_of_input(self, fresh_quantized):
        bits = {BitLocation(1, 3, 2), BitLocation(0, 0, 7)}
        expanded = expand_bits_to_rows(fresh_quantized, bits,
                                       weights_per_row=8)
        assert bits <= expanded


class TestReportFormatting:
    def test_security_sweep_table(self):
        text = format_security_sweep(security_sweep())
        assert "dnn-defender" in text
        assert "time-to-break" in text

    def test_latency_sweep_table(self):
        text = format_latency_sweep(latency_sweep(thresholds=(1000,)))
        assert "latency per T_ref" in text

    def test_accuracy_curves(self):
        curve = AccuracyCurve("bfa")
        curve.add(0, 0.9)
        curve.add(1, 0.5)
        text = format_accuracy_curves([curve])
        assert "bfa" in text
        assert "90.00" in text

    def test_secured_bits_curves(self):
        curve = SecuredBitsCurve(secured_bits=100, profile_rounds=2)
        curve.extra_flips.extend([0, 1])
        curve.accuracies.extend([0.8, 0.75])
        text = format_secured_bits_curves([curve])
        assert "100" in text
        assert "75.00" in text

    def test_format_table_validates_row_width(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["x", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len({len(line) for line in lines if line}) == 1


class TestThreatModelFlags:
    def test_table1_defaults(self):
        from repro.attacks import SEMI_WHITE_BOX, WHITE_BOX, ThreatModel

        assert SEMI_WHITE_BOX.knows_parameters
        assert SEMI_WHITE_BOX.has_test_batch
        assert SEMI_WHITE_BOX.knows_dram_addresses
        assert not SEMI_WHITE_BOX.knows_training_data
        assert not SEMI_WHITE_BOX.has_memory_write
        assert SEMI_WHITE_BOX.name == "semi-white-box"
        assert WHITE_BOX.name == "white-box"
        assert WHITE_BOX.knows_defense

    def test_memory_write_forbidden(self):
        from repro.attacks import ThreatModel

        with pytest.raises(ValueError):
            ThreatModel(has_memory_write=True)


class TestBehavioralExecutor:
    def test_block_and_collateral_accounting(self, fresh_quantized):
        from repro.attacks import BehavioralDefenseExecutor

        executor = BehavioralDefenseExecutor(
            fresh_quantized, block_prob=1.0, collateral_prob=1.0,
            rng=np.random.default_rng(0),
        )
        snap = fresh_quantized.snapshot()
        assert not executor.execute(BitLocation(0, 0, 7))
        assert executor.blocked == 1
        assert executor.collateral_flips == 1
        # Exactly one (random) bit changed — the collateral flip.
        assert fresh_quantized.hamming_distance_from(snap) == 1

    def test_no_block_passes_through(self, fresh_quantized):
        from repro.attacks import BehavioralDefenseExecutor

        executor = BehavioralDefenseExecutor(
            fresh_quantized, block_prob=0.0, collateral_prob=0.0,
            rng=np.random.default_rng(0),
        )
        before = fresh_quantized.bit_value(BitLocation(0, 0, 7))
        assert executor.execute(BitLocation(0, 0, 7))
        assert fresh_quantized.bit_value(BitLocation(0, 0, 7)) == 1 - before

    def test_probability_validation(self, fresh_quantized):
        from repro.attacks import BehavioralDefenseExecutor

        with pytest.raises(ValueError):
            BehavioralDefenseExecutor(fresh_quantized, 1.5, 0.0,
                                      np.random.default_rng(0))
        with pytest.raises(ValueError):
            BehavioralDefenseExecutor(fresh_quantized, 0.5, -0.1,
                                      np.random.default_rng(0))
