"""Tests for registry-resolved deployments: build(defense=..., attacker=...)."""

import pytest

from repro.core import DefendedDeployment
from repro.dram import DramGeometry, TimingParams

GEOMETRY = DramGeometry(
    banks=2, subarrays_per_bank=4, rows_per_subarray=64, row_bytes=128
)
TIMING = TimingParams(t_rh=1000)


def _build(fresh_model, tiny_dataset, **kwargs):
    return DefendedDeployment.build(
        fresh_model, tiny_dataset, geometry=GEOMETRY, timing=TIMING,
        seed=0, **kwargs,
    )


class TestRegistryDefenses:
    def test_radar_deployment_round_trip(self, fresh_model, tiny_dataset):
        with _build(
            fresh_model, tiny_dataset, defense="radar", attacker="smart-bfa"
        ) as deployment:
            assert deployment.defender is None
            assert deployment.defense.name == "radar"
            # Built with the live controller: the activate hook is attached
            # until close() (REP004/REP104 through the deployment).
            hook = deployment.defense._on_activate
            assert hook in deployment.controller._activate_hooks
            outcome = deployment.run_attack(budget=3)
            assert outcome.attacker == "smart-bfa"
            assert outcome.num_flips > 0
            assert all(f.bit not in {6, 7} for f in outcome.flips)
        assert hook not in deployment.controller._activate_hooks
        deployment.close()  # idempotent

    def test_none_defense_and_attacker_override(
        self, fresh_model, tiny_dataset
    ):
        deployment = _build(fresh_model, tiny_dataset, defense="none")
        outcome = deployment.run_attack(attacker="random", budget=5)
        assert outcome.attacker == "random"
        assert outcome.num_flips == 5

    def test_unnamed_attacker_rejected(self, fresh_model, tiny_dataset):
        deployment = _build(fresh_model, tiny_dataset, defense="none")
        with pytest.raises(ValueError, match="no attacker named"):
            deployment.run_attack()

    def test_logical_executor_requires_defender(
        self, fresh_model, tiny_dataset
    ):
        deployment = _build(fresh_model, tiny_dataset, defense="none")
        with pytest.raises(ValueError, match="flip_executor"):
            deployment.logical_executor()

    def test_default_path_still_builds_defender(
        self, fresh_model, tiny_dataset
    ):
        from repro.attacks import BfaConfig

        deployment = _build(
            fresh_model, tiny_dataset,
            profile_rounds=2, profile_config=BfaConfig(max_iterations=5),
            attack_batch_size=96, attacker="adaptive",
        )
        assert deployment.defender is not None
        assert deployment.defense.name == "dnn-defender"
        assert deployment.defense.protected_bits() == frozenset(
            deployment.defender.secured_bits
        )
        outcome = deployment.run_attack(budget=3)
        assert outcome.attacker == "adaptive"
        assert outcome.detail["known_secured_bits"] > 0
