"""Tests for the four-step swap engine and the Fig. 6 pipeline algebra."""

import numpy as np
import pytest

from repro.core.pipeline import (
    build_timeline,
    chain_aap_count,
    chain_latency_ns,
    max_swaps_per_window,
)
from repro.core.swap import SwapEngine
from repro.dram import (
    DramDevice,
    DramGeometry,
    MemoryController,
    RowAddress,
    TimingParams,
)

GEOMETRY = DramGeometry(
    banks=1, subarrays_per_bank=2, rows_per_subarray=32, row_bytes=64
)


def make_controller(t_rh=1000):
    return MemoryController(DramDevice(GEOMETRY), TimingParams(t_rh=t_rh))


def fill_rows(controller, rows):
    """Give each row distinct recognisable content."""
    for i, row in enumerate(rows):
        controller.poke_logical(
            row, np.full(GEOMETRY.row_bytes, i + 1, dtype=np.uint8)
        )


class TestSwapEngine:
    def test_swap_preserves_logical_data(self):
        mc = make_controller()
        engine = SwapEngine(mc, reserved_rows=2)
        target = RowAddress(0, 0, 5)
        others = [RowAddress(0, 0, r) for r in range(12) if r != 5]
        fill_rows(mc, [target] + others)
        before = {row: mc.peek_logical(row).copy() for row in [target] + others}
        rng = np.random.default_rng(0)
        record = engine.swap_target(target, rng)
        # Every logical row still reads back its own data.
        for row, data in before.items():
            np.testing.assert_array_equal(mc.peek_logical(row), data)
        # But the target's physical location changed.
        assert mc.indirection.physical(target) != target
        assert record.random_logical != target

    def test_swap_moves_target_physically_and_tracks_random(self):
        mc = make_controller()
        engine = SwapEngine(mc, reserved_rows=2)
        target = RowAddress(0, 0, 3)
        fill_rows(mc, [RowAddress(0, 0, r) for r in range(10)])
        rng = np.random.default_rng(1)
        record = engine.swap_target(target, rng)
        # Target now physically sits where the random row was, and vice versa.
        assert mc.indirection.physical(target) == record.random_logical
        assert mc.indirection.physical(record.random_logical) == target

    def test_swap_resets_target_disturbance(self):
        mc = make_controller(t_rh=500)
        engine = SwapEngine(mc, reserved_rows=2)
        target = RowAddress(0, 0, 5)
        aggressor = RowAddress(0, 0, 6)
        mc.activate(aggressor, actor="attacker", count=400, hammer=True)
        assert mc.device.disturbance(target) == 400
        engine.swap_target(target, np.random.default_rng(0))
        # The data's new physical home is fully charged.
        new_physical = mc.indirection.physical(target)
        assert mc.device.disturbance(new_physical) == 0

    def test_first_swap_costs_four_aaps(self):
        mc = make_controller()
        engine = SwapEngine(mc, reserved_rows=2)
        fill_rows(mc, [RowAddress(0, 0, r) for r in range(10)])
        record = engine.swap_target(
            RowAddress(0, 0, 2),
            np.random.default_rng(0),
            non_target_logical=RowAddress(0, 0, 8),
        )
        assert record.aaps_issued == 4
        assert not record.reused_reserved
        assert record.non_target_refreshed == RowAddress(0, 0, 8)

    def test_pipelined_chain_reuses_reserved(self):
        mc = make_controller()
        engine = SwapEngine(mc, reserved_rows=2)
        fill_rows(mc, [RowAddress(0, 0, r) for r in range(16)])
        rng = np.random.default_rng(0)
        targets = [RowAddress(0, 0, r) for r in (2, 4, 6)]
        non_targets = [RowAddress(0, 0, r) for r in (10, 11, 12)]
        records = []
        for target, nt in zip(targets, non_targets):
            records.append(
                engine.swap_target(
                    target, rng, non_target_logical=nt,
                    exclude=set(targets), pipelined=True,
                )
            )
        assert not records[0].reused_reserved
        assert records[1].reused_reserved
        assert records[2].reused_reserved
        # Steady state: 3 AAPs per swap (Fig. 6 / Section 5.1).
        assert records[1].aaps_issued == 3
        assert records[2].aaps_issued == 3

    def test_non_target_refresh_resets_its_disturbance(self):
        mc = make_controller(t_rh=500)
        engine = SwapEngine(mc, reserved_rows=2)
        fill_rows(mc, [RowAddress(0, 0, r) for r in range(12)])
        non_target = RowAddress(0, 0, 9)
        mc.activate(RowAddress(0, 0, 10), actor="attacker", count=300,
                    hammer=True)
        assert mc.device.disturbance(non_target) == 300
        engine.swap_target(
            RowAddress(0, 0, 2), np.random.default_rng(0),
            non_target_logical=non_target,
        )
        assert mc.device.disturbance(non_target) == 0

    def test_step4_requires_same_subarray(self):
        mc = make_controller()
        engine = SwapEngine(mc, reserved_rows=2)
        with pytest.raises(ValueError):
            engine.swap_target(
                RowAddress(0, 0, 2), np.random.default_rng(0),
                non_target_logical=RowAddress(0, 1, 2),
            )

    def test_validates_reserved_rows(self):
        with pytest.raises(ValueError):
            SwapEngine(make_controller(), reserved_rows=0)

    def test_repeated_swaps_stay_consistent(self):
        mc = make_controller()
        engine = SwapEngine(mc, reserved_rows=2)
        rows = [RowAddress(0, 0, r) for r in range(14)]
        fill_rows(mc, rows)
        before = {row: mc.peek_logical(row).copy() for row in rows}
        rng = np.random.default_rng(3)
        target = RowAddress(0, 0, 5)
        for _ in range(20):
            engine.swap_target(target, rng)
        for row, data in before.items():
            np.testing.assert_array_equal(mc.peek_logical(row), data)


class TestPipelineAlgebra:
    def test_chain_counts(self):
        assert chain_aap_count(0) == 0
        assert chain_aap_count(1, pipelined=True) == 4
        assert chain_aap_count(10, pipelined=True) == 31    # 3n + 1
        assert chain_aap_count(10, pipelined=False) == 40   # 4n

    def test_pipelining_saves_one_aap_per_extra_swap(self):
        for n in range(2, 20):
            saved = chain_aap_count(n, False) - chain_aap_count(n, True)
            assert saved == n - 1

    def test_latency_uses_taap(self):
        timing = TimingParams()
        latency = chain_latency_ns(5, timing, pipelined=True)
        assert latency == pytest.approx(16 * timing.t_aap_ns + timing.t_rc_ns)

    def test_max_swaps_matches_paper_formula(self):
        timing = TimingParams(t_rh=4800)
        expected = int(
            timing.t_act_eff_ns * timing.t_rh / (3 * timing.t_aap_ns)
        )
        assert max_swaps_per_window(timing) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            chain_aap_count(-1)
        with pytest.raises(ValueError):
            build_timeline(-1, TimingParams())

    def test_timeline_slots_are_contiguous(self):
        timing = TimingParams()
        entries = build_timeline(4, timing, pipelined=True)
        slots = [e.slot for e in entries]
        assert slots == sorted(slots)
        assert slots[-1] == chain_aap_count(4, True) - 1

    def test_timeline_overlap_semantics(self):
        entries = build_timeline(3, TimingParams(), pipelined=True)
        # Swaps 2 and 3 have no step-1 entry: it is the previous step 4.
        for swap in (2, 3):
            steps = [e.step for e in entries if e.swap == swap]
            assert steps == [2, 3, 4]
        shared = [e for e in entries if e.shared_with_next]
        assert len(shared) == 2  # step 4 of swaps 1 and 2

    def test_timeline_unpipelined_has_all_steps(self):
        entries = build_timeline(3, TimingParams(), pipelined=False)
        assert len(entries) == 12
        assert all(not e.shared_with_next for e in entries)

    def test_timeline_descriptions(self):
        entries = build_timeline(1, TimingParams())
        assert "random" in entries[0].description
        assert "non-target" in entries[-1].description
