"""Unit and property tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    bit_flip_delta,
    bits_to_bytes,
    bytes_to_bits,
    flip_bit_in_byte,
    get_bit,
    hamming_distance,
    int8_to_twos_complement,
    popcount,
    set_bit,
    twos_complement_to_int8,
)


class TestBytesBitsRoundtrip:
    def test_known_value(self):
        bits = bytes_to_bits(np.array([0b1010_0001], dtype=np.uint8))
        assert bits.shape == (1, 8)
        # LSB-first
        assert bits.tolist() == [[1, 0, 0, 0, 0, 1, 0, 1]]

    def test_roundtrip_2d(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, size=(5, 9), dtype=np.uint8)
        assert np.array_equal(bits_to_bytes(bytes_to_bits(data)), data)

    def test_bits_to_bytes_rejects_bad_axis(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.zeros((3, 7), dtype=np.uint8))

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=64))
    def test_roundtrip_property(self, values):
        data = np.array(values, dtype=np.uint8)
        assert np.array_equal(bits_to_bytes(bytes_to_bits(data)), data)


class TestBitOps:
    def test_flip_bit(self):
        assert flip_bit_in_byte(0b0000_0000, 0) == 1
        assert flip_bit_in_byte(0b1000_0000, 7) == 0
        assert flip_bit_in_byte(0xFF, 3) == 0b1111_0111

    def test_flip_bit_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            flip_bit_in_byte(0, 8)
        with pytest.raises(ValueError):
            get_bit(0, -1)

    def test_get_set_bit(self):
        assert get_bit(0b0100, 2) == 1
        assert set_bit(0, 5, 1) == 32
        assert set_bit(32, 5, 1) == 32
        assert set_bit(32, 5, 0) == 0

    def test_set_bit_rejects_bad_value(self):
        with pytest.raises(ValueError):
            set_bit(0, 0, 2)

    @given(st.integers(0, 255), st.integers(0, 7))
    def test_double_flip_is_identity(self, value, bit):
        assert flip_bit_in_byte(flip_bit_in_byte(value, bit), bit) == value

    @given(st.integers(0, 255), st.integers(0, 7), st.integers(0, 1))
    def test_set_then_get(self, value, bit, bit_value):
        assert get_bit(set_bit(value, bit, bit_value), bit) == bit_value


class TestTwosComplement:
    def test_known_values(self):
        assert int8_to_twos_complement(np.array([-1], dtype=np.int8))[0] == 0xFF
        assert int8_to_twos_complement(np.array([-128], dtype=np.int8))[0] == 0x80
        assert twos_complement_to_int8(np.array([0x80], dtype=np.uint8))[0] == -128

    @given(st.lists(st.integers(-128, 127), min_size=1, max_size=32))
    def test_roundtrip(self, values):
        data = np.array(values, dtype=np.int8)
        assert np.array_equal(
            twos_complement_to_int8(int8_to_twos_complement(data)), data
        )

    @given(st.integers(-128, 127), st.integers(0, 7))
    def test_bit_flip_delta_matches_actual_flip(self, value, bit):
        byte = int8_to_twos_complement(np.array([value], dtype=np.int8))[0]
        flipped = twos_complement_to_int8(
            np.array([flip_bit_in_byte(int(byte), bit)], dtype=np.uint8)
        )[0]
        assert int(flipped) - int(value) == bit_flip_delta(value, bit)


class TestPopcountHamming:
    def test_popcount(self):
        assert popcount(np.array([0xFF, 0x00, 0x0F], dtype=np.uint8)) == 12

    def test_hamming(self):
        a = np.array([0b1010], dtype=np.uint8)
        b = np.array([0b0101], dtype=np.uint8)
        assert hamming_distance(a, b) == 4
        assert hamming_distance(a, a) == 0

    def test_hamming_shape_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(
                np.zeros(2, dtype=np.uint8), np.zeros(3, dtype=np.uint8)
            )

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=16))
    def test_hamming_to_zero_is_popcount(self, values):
        data = np.array(values, dtype=np.uint8)
        assert hamming_distance(data, np.zeros_like(data)) == popcount(data)
