"""BFA fast-scoring parity: argpartition top-k vs the argsort scan.

The fast path (masked scores + ``np.argpartition`` + cached bit-deltas)
must select exactly the flips the legacy full-argsort scan selects on
seeded models, across whole attack runs including skip sets and defended
attempts.
"""

import numpy as np
import pytest

from repro.attacks import LogicalDefenseExecutor
from repro.attacks.bfa import BfaConfig, BitFlipAttack
from repro.nn.quant import BitLocation
from repro.nn.train import loss_and_grads


def _attack(qmodel, dataset, fast: bool, skip=None, executor=None):
    rng = np.random.default_rng(11)
    x, y = dataset.attack_batch(64, rng)
    return BitFlipAttack(
        qmodel, x, y,
        config=BfaConfig(
            max_iterations=6, exact_eval_top=3, fast_scoring=fast
        ),
        skip=skip, executor=executor,
    )


def _attempts(result):
    return [
        (a.iteration, a.location, a.succeeded, round(a.estimated_gain, 9))
        for a in result.attempts
    ]


class TestScoringParity:
    def test_full_runs_select_identical_flips(self, quantized_factory,
                                              tiny_dataset):
        fast_result = _attack(
            quantized_factory(), tiny_dataset, fast=True
        ).run()
        slow_result = _attack(
            quantized_factory(), tiny_dataset, fast=False
        ).run()
        assert _attempts(fast_result) == _attempts(slow_result)
        assert fast_result.accuracy_history == slow_result.accuracy_history

    def test_parity_with_skip_set_and_defense(self, quantized_factory,
                                              tiny_dataset):
        def build(fast):
            qmodel = quantized_factory()
            probe = _attack(qmodel, tiny_dataset, fast=True)
            loss_and_grads(qmodel.model, probe.attack_x, probe.attack_y)
            secured = {
                probe._layer_best_candidate(i)[0]
                for i in range(qmodel.num_layers)
                if probe._layer_best_candidate(i) is not None
            }
            qmodel.zero_grad()
            return _attack(
                qmodel, tiny_dataset, fast=fast, skip=set(secured),
                executor=LogicalDefenseExecutor(qmodel, secured),
            )

        fast_result = build(True).run()
        slow_result = build(False).run()
        assert _attempts(fast_result) == _attempts(slow_result)

    def test_per_layer_candidates_match(self, fresh_quantized, tiny_dataset):
        fast = _attack(fresh_quantized, tiny_dataset, fast=True)
        slow = _attack(fresh_quantized, tiny_dataset, fast=False)
        loss_and_grads(fresh_quantized.model, fast.attack_x, fast.attack_y)
        for index in range(fresh_quantized.num_layers):
            assert (
                fast._layer_best_candidate(index)
                == slow._layer_best_candidate(index)
            )


class TestFastPathInternals:
    def test_bit_deltas_match_reference(self):
        weights = np.arange(-128, 128, dtype=np.int8)
        deltas = BitFlipAttack._bit_deltas(weights)
        bytes_view = weights.view(np.uint8)
        for i, byte in enumerate(bytes_view):
            for bit in range(7):
                expected = float(1 << bit) * (
                    1.0 if not (byte >> bit) & 1 else -1.0
                )
                assert deltas[i, bit] == expected
            expected_sign = -128.0 if not (byte >> 7) & 1 else 128.0
            assert deltas[i, 7] == expected_sign

    def test_delta_cache_invalidated_by_mutation(self, fresh_quantized,
                                                 tiny_dataset):
        attack = _attack(fresh_quantized, tiny_dataset, fast=True)
        first = attack._scaled_deltas(0)
        assert attack._scaled_deltas(0) is first  # cache hit
        fresh_quantized.flip_bit(BitLocation(0, 0, 3))
        second = attack._scaled_deltas(0)
        assert second is not first  # version bump invalidated
        np.testing.assert_array_equal(
            second, BitFlipAttack._bit_deltas(
                fresh_quantized.layers[0].weight_int
            ) * fresh_quantized.layers[0].scale,
        )

    def test_mask_tracks_skip_and_tried(self, fresh_quantized, tiny_dataset):
        skip = {BitLocation(0, 1, 4)}
        attack = _attack(fresh_quantized, tiny_dataset, fast=True, skip=skip)
        mask = attack._layer_mask(0)
        assert mask[1 * 8 + 4]
        assert mask.sum() == 1
        attack._mark_tried(BitLocation(0, 2, 7))
        assert attack._layer_mask(0)[2 * 8 + 7]
        assert attack._layer_mask(0).sum() == 2

    def test_reconstruction_guard_invalidates_delta_cache(
        self, fresh_quantized, tiny_dataset
    ):
        """Every weight_int mutation path must bump layer.version; the
        reconstruction defense clips weights outside the flip API."""
        from repro.defenses.software import WeightReconstructionGuard

        guard = WeightReconstructionGuard(fresh_quantized, percentile=50.0)
        versions = [layer.version for layer in fresh_quantized.layers]
        corrected = guard.reconstruct()
        assert corrected > 0  # the 50th-percentile bound clips aggressively
        bumped = [
            layer.version > v
            for layer, v in zip(fresh_quantized.layers, versions)
        ]
        assert any(bumped)

    def test_top_candidates_respect_min_gain(self, fresh_quantized,
                                             tiny_dataset):
        attack = _attack(fresh_quantized, tiny_dataset, fast=True)
        loss_and_grads(fresh_quantized.model, attack.attack_x,
                       attack.attack_y)
        top = attack._layer_top_candidates(0, 16)
        assert all(score > 0.0 for _, score in top)
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)
