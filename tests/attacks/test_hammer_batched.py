"""Batched multi-bit hammer windows and hammer-window accounting fixes.

Covers the row-grouped ``attempt_flips`` path (one shared window and one
model sync per victim row), the executor batching protocol, and the
tiny-``T_RH`` burst-accounting regression (zero-activation bursts must
not tick the defense or charge commands).
"""

import numpy as np
import pytest

from repro.attacks import execute_batch
from repro.attacks.executor import LogicalDefenseExecutor, SoftwareFlipExecutor
from repro.attacks.hammer import HammerExecutor, RowHammerAttacker
from repro.dram import DramDevice, DramGeometry, MemoryController, TimingParams
from repro.dram.commands import Command
from repro.mapping import place_model
from repro.nn.quant import BitLocation

GEOMETRY = DramGeometry(
    banks=2, subarrays_per_bank=4, rows_per_subarray=64, row_bytes=256
)


class CountingDefense:
    def __init__(self):
        self.ticks = 0

    def tick(self):
        self.ticks += 1


class SyncCountingLayout:
    """Wraps a WeightLayout, counting post-window model syncs."""

    def __init__(self, layout):
        self._layout = layout
        self.syncs = 0

    def __getattr__(self, name):
        return getattr(self._layout, name)

    def sync_model_from_dram(self, full=None):
        self.syncs += 1
        return self._layout.sync_model_from_dram(full=full)


def _deployment(fresh_quantized, t_rh=500):
    controller = MemoryController(
        DramDevice(GEOMETRY), TimingParams(t_rh=t_rh)
    )
    layout = place_model(fresh_quantized, controller, reserved_rows=2, seed=0)
    return controller, layout


def _multi_row_targets(layout, rows, bits_per_row=4):
    targets = []
    for slot in layout.slots[:rows]:
        for bit in range(bits_per_row):
            targets.append(BitLocation(slot.layer, slot.byte_offset, bit))
    assert len({layout.locate_bit(t)[0] for t in targets}) == rows
    return targets


class TestAttemptFlipsParity:
    def test_matches_sequential_with_refresh_gaps(self, quantized_factory):
        """Row-batched outcomes and final weights are identical to the
        per-bit sequential schedule (one window per bit, refresh-separated
        so same-row cells can recharge between flips)."""
        qm_seq = quantized_factory()
        controller, layout = _deployment(qm_seq)
        attacker = RowHammerAttacker(controller, layout)
        targets = _multi_row_targets(layout, rows=3)
        sequential = []
        for target in targets:
            sequential.append(attacker.attempt_flip(target, max_windows=1))
            controller.advance_time(controller.ns_until_refresh())

        qm_bat = quantized_factory()
        controller_b, layout_b = _deployment(qm_bat)
        attacker_b = RowHammerAttacker(controller_b, layout_b)
        batched = attacker_b.attempt_flips(targets, max_windows=1)

        assert batched == sequential
        assert all(batched)
        seq_bytes = [layer.packed_bytes().tobytes() for layer in qm_seq.layers]
        bat_bytes = [layer.packed_bytes().tobytes() for layer in qm_bat.layers]
        assert seq_bytes == bat_bytes

    def test_single_location_equals_attempt_flip(self, quantized_factory):
        qm_a = quantized_factory()
        controller_a, layout_a = _deployment(qm_a)
        one = RowHammerAttacker(controller_a, layout_a)
        target = BitLocation(0, 0, 6)
        flip_result = one.attempt_flip(target, max_windows=2)

        qm_b = quantized_factory()
        controller_b, layout_b = _deployment(qm_b)
        many = RowHammerAttacker(controller_b, layout_b)
        batch_result = many.attempt_flips([target], max_windows=2)

        assert batch_result == [flip_result]
        assert one.sessions == many.sessions
        assert one.activations_issued == many.activations_issued
        assert controller_a.now_ns == controller_b.now_ns

    def test_shares_windows_and_syncs_per_row(self, fresh_quantized):
        controller, layout = _deployment(fresh_quantized)
        counting = SyncCountingLayout(layout)
        attacker = RowHammerAttacker(controller, counting)
        rows, bits_per_row = 2, 4
        targets = _multi_row_targets(layout, rows, bits_per_row)
        outcomes = attacker.attempt_flips(targets, max_windows=3)
        assert all(outcomes)
        # One window (and one sync) per row, not per bit.
        assert attacker.sessions == rows
        assert counting.syncs == rows
        assert attacker.activations_issued == rows * controller.timing.t_rh

    def test_declared_targets_cleared_after_batch(self, fresh_quantized):
        controller, layout = _deployment(fresh_quantized)
        attacker = RowHammerAttacker(controller, layout)
        targets = _multi_row_targets(layout, rows=2)
        attacker.attempt_flips(targets, max_windows=1)
        for target in targets:
            logical, _ = layout.locate_bit(target)
            physical = controller.indirection.physical(logical)
            assert controller.attack_targets(physical) == frozenset()

    def test_max_windows_validation(self, fresh_quantized):
        controller, layout = _deployment(fresh_quantized)
        attacker = RowHammerAttacker(controller, layout)
        with pytest.raises(ValueError, match="max_windows"):
            attacker.attempt_flips([BitLocation(0, 0, 0)], max_windows=0)


class TestTinyTrhAccounting:
    def test_no_empty_bursts_below_chunk_count(self, fresh_quantized):
        """``t_rh < chunks_per_window``: the zero-activation bursts of the
        old even split must be dropped — the defense ticks once (not
        ``chunks_per_window`` times) and exactly ``t_rh`` attacker ACTs
        are issued per window."""
        controller, layout = _deployment(fresh_quantized, t_rh=2)
        defense = CountingDefense()
        attacker = RowHammerAttacker(
            controller, layout, defense=defense, chunks_per_window=4
        )
        flipped = attacker.attempt_flip(BitLocation(0, 0, 6), max_windows=1)
        assert flipped
        acts = controller.actor_stats("attacker").counts.get(Command.ACT, 0)
        assert acts == 2
        assert attacker.activations_issued == 2
        assert defense.ticks == 1

    def test_normal_t_rh_burst_counts_unchanged(self, fresh_quantized):
        controller, layout = _deployment(fresh_quantized, t_rh=500)
        defense = CountingDefense()
        attacker = RowHammerAttacker(
            controller, layout, defense=defense, chunks_per_window=4
        )
        attacker.attempt_flip(BitLocation(0, 0, 6), max_windows=1)
        acts = controller.actor_stats("attacker").counts.get(Command.ACT, 0)
        assert acts == 500
        assert defense.ticks == 4

    def test_double_sided_skips_empty_aggressor_share(self, fresh_quantized):
        """A 1-activation burst split across two aggressors gives the
        second aggressor an empty share, which must issue nothing."""
        controller, layout = _deployment(fresh_quantized, t_rh=1)
        attacker = RowHammerAttacker(
            controller, layout, chunks_per_window=4, sided="double"
        )
        attacker.attempt_flip(BitLocation(0, 0, 6), max_windows=1)
        acts = controller.actor_stats("attacker").counts.get(Command.ACT, 0)
        assert acts == 1
        assert attacker.activations_issued == 1


class TestExecutorBatching:
    def test_hammer_executor_execute_many_counts(self, fresh_quantized):
        controller, layout = _deployment(fresh_quantized)
        executor = HammerExecutor(RowHammerAttacker(controller, layout))
        targets = _multi_row_targets(layout, rows=2)
        outcomes = executor.execute_many(targets)
        assert outcomes == [True] * len(targets)
        assert executor.flips_performed == len(targets)
        assert executor.blocked == 0

    def test_execute_batch_prefers_execute_many(self, fresh_quantized):
        calls = []

        class Recorder:
            def execute(self, location):
                raise AssertionError("batched path must be used")

            def execute_many(self, locations):
                calls.append(list(locations))
                return [True] * len(locations)

        locations = [BitLocation(0, 0, 0), BitLocation(0, 0, 1)]
        assert execute_batch(Recorder(), locations) == [True, True]
        assert calls == [locations]

    def test_execute_batch_falls_back_to_loop(self, fresh_quantized):
        class PlainExecutor:
            def __init__(self):
                self.calls = 0

            def execute(self, location):
                self.calls += 1
                return self.calls % 2 == 1

        executor = PlainExecutor()
        locations = [BitLocation(0, 0, bit) for bit in range(3)]
        assert execute_batch(executor, locations) == [True, False, True]
        assert executor.calls == 3

    def test_software_and_logical_batch_via_fallback_loop(
        self, quantized_factory
    ):
        """Executors without a batched path keep loop semantics through
        execute_batch's fallback."""
        locations = [BitLocation(0, 0, bit) for bit in range(4)]
        qm_loop = quantized_factory()
        loop_exec = SoftwareFlipExecutor(qm_loop)
        loop = [loop_exec.execute(loc) for loc in locations]
        qm_many = quantized_factory()
        many_exec = SoftwareFlipExecutor(qm_many)
        many = execute_batch(many_exec, locations)
        assert loop == many
        assert qm_loop.layers[0].weight_int.tobytes() == \
            qm_many.layers[0].weight_int.tobytes()

        secured = {locations[1]}
        qm_l = quantized_factory()
        logical = LogicalDefenseExecutor(qm_l, secured)
        assert execute_batch(logical, locations) == [True, False, True, True]
        assert logical.blocked == 1
