"""Tests for the progressive bit-flip attack and its baselines."""

import numpy as np
import pytest

from repro.attacks import (
    BfaConfig,
    BitFlipAttack,
    LogicalDefenseExecutor,
    SoftwareFlipExecutor,
    profile_vulnerable_bits,
    random_bit_attack,
    sample_random_bits,
)
from repro.nn import evaluate
from repro.nn.quant import BitLocation


def attack_batch(dataset, n=128, seed=0):
    rng = np.random.default_rng(seed)
    return dataset.attack_batch(n, rng)


class TestBfaCore:
    def test_bfa_degrades_accuracy_fast(self, fresh_quantized, tiny_dataset):
        x, y = attack_batch(tiny_dataset)
        before = evaluate(
            fresh_quantized.model, tiny_dataset.x_test, tiny_dataset.y_test
        )
        attack = BitFlipAttack(
            fresh_quantized, x, y,
            config=BfaConfig(max_iterations=20, stop_accuracy=0.15),
            eval_x=tiny_dataset.x_test, eval_y=tiny_dataset.y_test,
        )
        result = attack.run()
        after = result.final_accuracy
        # Targeted attack: large drop with a small number of flips.
        assert before - after > 0.4
        assert result.num_flips <= 20

    def test_bfa_beats_random_at_equal_budget(
        self, fresh_quantized, tiny_dataset, trained_state
    ):
        from tests.conftest import make_tiny_model
        from repro.nn import QuantizedModel

        x, y = attack_batch(tiny_dataset)
        attack = BitFlipAttack(
            fresh_quantized, x, y,
            config=BfaConfig(max_iterations=10),
            eval_x=tiny_dataset.x_test, eval_y=tiny_dataset.y_test,
        )
        bfa_result = attack.run()

        rand_model = make_tiny_model(seed=0)
        rand_model.load_state_dict(trained_state)
        rand_q = QuantizedModel(rand_model)
        rand_result = random_bit_attack(
            rand_q, tiny_dataset.x_test, tiny_dataset.y_test,
            num_flips=bfa_result.num_flips or 10,
            rng=np.random.default_rng(1),
        )
        assert bfa_result.final_accuracy < rand_result.final_accuracy - 0.1

    def test_flip_history_is_consistent(self, fresh_quantized, tiny_dataset):
        x, y = attack_batch(tiny_dataset)
        snap = fresh_quantized.snapshot()
        attack = BitFlipAttack(
            fresh_quantized, x, y, config=BfaConfig(max_iterations=5)
        )
        result = attack.run()
        assert fresh_quantized.hamming_distance_from(snap) == result.num_flips
        assert len(result.accuracy_history) == len(result.attempts) + 1

    def test_skip_set_is_respected(self, fresh_quantized, tiny_dataset):
        x, y = attack_batch(tiny_dataset)
        probe = BitFlipAttack(
            fresh_quantized, x, y, config=BfaConfig(max_iterations=3)
        )
        first = probe.run().flips
        assert first
        # Restore and re-attack skipping the previous flips.
        fresh = fresh_quantized
        snap = fresh.snapshot()
        for loc in first:
            fresh.flip_bit(loc)  # undo by flipping back
        attack = BitFlipAttack(
            fresh, x, y, config=BfaConfig(max_iterations=3),
            skip=set(first),
        )
        second = attack.run().flips
        assert not set(second) & set(first)

    def test_no_candidates_stops_early(self, fresh_quantized, tiny_dataset):
        x, y = attack_batch(tiny_dataset)
        all_bits = {
            BitLocation(l, i, b)
            for l in range(fresh_quantized.num_layers)
            for i in range(fresh_quantized.layer(l).num_weights)
            for b in range(8)
        }
        attack = BitFlipAttack(
            fresh_quantized, x, y, config=BfaConfig(max_iterations=5),
            skip=all_bits,
        )
        result = attack.run()
        assert result.num_flips == 0
        assert not result.attempts

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BfaConfig(max_iterations=0)
        with pytest.raises(ValueError):
            BfaConfig(exact_eval_top=0)

    def test_bit_deltas_match_scalar_helper(self, fresh_quantized):
        from repro.utils.bits import bit_flip_delta
        layer = fresh_quantized.layer(0)
        deltas = BitFlipAttack._bit_deltas(layer.weight_int)
        flat = layer.weight_int.reshape(-1)
        rng = np.random.default_rng(0)
        for _ in range(30):
            i = int(rng.integers(0, flat.size))
            b = int(rng.integers(0, 8))
            assert deltas[i, b] == bit_flip_delta(int(flat[i]), b)


class TestLogicalDefenseExecutor:
    def test_blocks_secured_bits(self, fresh_quantized):
        loc = BitLocation(0, 0, 7)
        execu = LogicalDefenseExecutor(fresh_quantized, {loc})
        before = fresh_quantized.get_int(loc)
        assert not execu.execute(loc)
        assert fresh_quantized.get_int(loc) == before
        assert execu.blocked == 1

    def test_allows_unsecured_bits(self, fresh_quantized):
        execu = LogicalDefenseExecutor(fresh_quantized, set())
        loc = BitLocation(0, 1, 7)
        assert execu.execute(loc)
        assert execu.flips_performed == 1


class TestRandomAttack:
    def test_sample_random_bits_valid(self, fresh_quantized):
        rng = np.random.default_rng(0)
        locs = sample_random_bits(fresh_quantized, 100, rng)
        assert len(locs) == 100
        for loc in locs:
            assert 0 <= loc.layer < fresh_quantized.num_layers
            assert 0 <= loc.index < fresh_quantized.layer(loc.layer).num_weights
            assert 0 <= loc.bit < 8

    def test_sample_too_many_rejected(self, fresh_quantized):
        with pytest.raises(ValueError):
            sample_random_bits(
                fresh_quantized, fresh_quantized.total_bits + 1,
                np.random.default_rng(0),
            )

    def test_random_attack_mild(self, fresh_quantized, tiny_dataset):
        before = evaluate(
            fresh_quantized.model, tiny_dataset.x_test, tiny_dataset.y_test
        )
        result = random_bit_attack(
            fresh_quantized, tiny_dataset.x_test, tiny_dataset.y_test,
            num_flips=30, rng=np.random.default_rng(2), eval_every=10,
        )
        assert result.accuracies[0] == pytest.approx(before)
        assert result.checkpoints[-1] == 30
        # Random flips hurt far less than a targeted attack of the same size.
        assert result.final_accuracy > before - 0.35

    def test_eval_every_validation(self, fresh_quantized, tiny_dataset):
        with pytest.raises(ValueError):
            random_bit_attack(
                fresh_quantized, tiny_dataset.x_test, tiny_dataset.y_test,
                num_flips=2, rng=np.random.default_rng(0), eval_every=0,
            )


class TestProfiler:
    def test_rounds_are_disjoint_and_model_restored(
        self, fresh_quantized, tiny_dataset
    ):
        x, y = attack_batch(tiny_dataset)
        snap = fresh_quantized.snapshot()
        profile = profile_vulnerable_bits(
            fresh_quantized, x, y, rounds=3,
            config=BfaConfig(max_iterations=4),
        )
        assert fresh_quantized.hamming_distance_from(snap) == 0
        assert profile.num_rounds >= 2
        seen = set()
        for round_bits in profile.rounds:
            assert not seen & set(round_bits)
            seen.update(round_bits)
        assert profile.all_bits == seen

    def test_bits_up_to_round(self, fresh_quantized, tiny_dataset):
        x, y = attack_batch(tiny_dataset)
        profile = profile_vulnerable_bits(
            fresh_quantized, x, y, rounds=2,
            config=BfaConfig(max_iterations=3),
        )
        assert profile.bits_up_to_round(0) == set()
        assert profile.bits_up_to_round(1) == set(profile.rounds[0])
        with pytest.raises(ValueError):
            profile.bits_up_to_round(-1)

    def test_rounds_validation(self, fresh_quantized, tiny_dataset):
        x, y = attack_batch(tiny_dataset)
        with pytest.raises(ValueError):
            profile_vulnerable_bits(fresh_quantized, x, y, rounds=0)
