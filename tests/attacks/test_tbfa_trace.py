"""Tests for the targeted attack (T-BFA), command trace, and DD_Interrupt."""

import numpy as np
import pytest

from repro.attacks import (
    LogicalDefenseExecutor,
    TargetedBitFlipAttack,
    TbfaConfig,
)
from repro.dram import (
    CommandTrace,
    DramDevice,
    DramGeometry,
    MemoryController,
    RowAddress,
    TimingParams,
)


def attack_batch(dataset, n=128, seed=0):
    rng = np.random.default_rng(seed)
    return dataset.attack_batch(n, rng)


class TestTbfaConfig:
    def test_rejects_same_classes(self):
        with pytest.raises(ValueError):
            TbfaConfig(source_class=1, target_class=1)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            TbfaConfig(source_class=0, target_class=1, max_iterations=0)
        with pytest.raises(ValueError):
            TbfaConfig(source_class=0, target_class=1, stop_success_rate=0.0)


class TestTargetedAttack:
    def test_raises_success_rate(self, fresh_quantized, tiny_dataset):
        x, y = attack_batch(tiny_dataset)
        config = TbfaConfig(
            source_class=0, target_class=1, max_iterations=15,
            exact_eval_top=4, stop_success_rate=0.8,
        )
        attack = TargetedBitFlipAttack(fresh_quantized, x, y, config)
        result = attack.run()
        assert result.final_success_rate > result.initial_success_rate
        assert result.flips

    def test_requires_source_samples(self, fresh_quantized, tiny_dataset):
        x, y = attack_batch(tiny_dataset)
        mask = y != 3
        config = TbfaConfig(source_class=3, target_class=1)
        with pytest.raises(ValueError):
            TargetedBitFlipAttack(fresh_quantized, x[mask], y[mask], config)

    def test_defense_blocks_targeted_attack_on_secured_bits(
        self, fresh_quantized, tiny_dataset
    ):
        x, y = attack_batch(tiny_dataset)
        config = TbfaConfig(
            source_class=0, target_class=1, max_iterations=6,
            exact_eval_top=4,
        )
        # Discover the bits T-BFA wants, then secure them and replay.
        probe = TargetedBitFlipAttack(fresh_quantized, x, y, config)
        snap = fresh_quantized.snapshot()
        wanted = set(probe.run().flips)
        fresh_quantized.restore(snap)
        assert wanted
        executor = LogicalDefenseExecutor(fresh_quantized, wanted)
        defended = TargetedBitFlipAttack(
            fresh_quantized, x, y, config, executor=executor, skip=set()
        )
        result = defended.run()
        assert not set(result.flips) & wanted

    def test_history_lengths_match_attempts(
        self, fresh_quantized, tiny_dataset
    ):
        x, y = attack_batch(tiny_dataset)
        config = TbfaConfig(source_class=0, target_class=2, max_iterations=4,
                            exact_eval_top=3)
        result = TargetedBitFlipAttack(fresh_quantized, x, y, config).run()
        assert len(result.success_rate_history) == result.attempts
        assert len(result.other_accuracy_history) == result.attempts


class TestCommandTrace:
    def make_controller(self):
        geometry = DramGeometry(
            banks=2, subarrays_per_bank=2, rows_per_subarray=16, row_bytes=32
        )
        return MemoryController(DramDevice(geometry), TimingParams(t_rh=10**6))

    def test_records_activations(self):
        mc = self.make_controller()
        trace = CommandTrace(mc)
        mc.activate(RowAddress(0, 0, 3), count=10, hammer=True)
        mc.activate(RowAddress(1, 0, 5), count=4, hammer=True)
        assert trace.total_activations == 14
        assert trace.activations_by_bank == {0: 10, 1: 4}
        assert trace.summary()["distinct_rows"] == 2

    def test_hottest_rows_ranks_aggressors(self):
        mc = self.make_controller()
        trace = CommandTrace(mc)
        hot = RowAddress(0, 0, 3)
        mc.activate(hot, count=100, hammer=True)
        mc.activate(RowAddress(0, 0, 7), count=5, hammer=True)
        ranked = trace.hottest_rows(1)
        assert ranked[0][0] == hot
        assert ranked[0][1] == 100

    def test_window_bounds_entries(self):
        mc = self.make_controller()
        trace = CommandTrace(mc, window=3)
        for i in range(6):
            mc.activate(RowAddress(0, 0, i), count=1)
        assert len(trace.entries) == 3
        assert trace.total_activations == 6  # aggregates keep counting

    def test_span_query(self):
        mc = self.make_controller()
        trace = CommandTrace(mc)
        mc.activate(RowAddress(0, 0, 1), count=5, hammer=True)
        end = mc.now_ns
        mc.activate(RowAddress(0, 0, 2), count=5, hammer=True)
        assert trace.activations_in_span(0.0, end) == 5
        with pytest.raises(ValueError):
            trace.activations_in_span(10.0, 0.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            CommandTrace(self.make_controller(), window=0)


class TestDefenderInterrupt:
    def test_interrupted_defender_stops_swapping(self):
        from repro.core import DNNDefender
        from repro.mapping import ProtectionPlan

        geometry = DramGeometry(
            banks=1, subarrays_per_bank=2, rows_per_subarray=32, row_bytes=32
        )
        mc = MemoryController(DramDevice(geometry), TimingParams(t_rh=100))
        plan = ProtectionPlan(
            secured_bits=set(),
            target_rows=[RowAddress(0, 0, 5)],
            non_target_rows=[RowAddress(0, 0, 9)],
        )
        defender = DNNDefender(mc, plan)
        mc.advance_time(defender.period_ns * 2)
        defender.tick()
        swaps_before = defender.stats.swaps_executed
        assert swaps_before > 0
        defender.interrupt()
        mc.advance_time(defender.period_ns * 3)
        defender.tick()
        assert defender.stats.swaps_executed == swaps_before
        defender.resume()
        mc.advance_time(defender.period_ns)
        defender.tick()
        assert defender.stats.swaps_executed > swaps_before


class TestDoubleSidedHammer:
    def build(self, fresh_model, t_rh=1000):
        from repro.mapping import WeightLayout
        from repro.nn import QuantizedModel

        geometry = DramGeometry(
            banks=2, subarrays_per_bank=4, rows_per_subarray=64, row_bytes=128
        )
        qmodel = QuantizedModel(fresh_model)
        mc = MemoryController(DramDevice(geometry), TimingParams(t_rh=t_rh))
        layout = WeightLayout(qmodel, mc, seed=0)
        return qmodel, mc, layout

    def test_double_sided_flip_lands(self, fresh_model):
        from repro.attacks import RowHammerAttacker
        from repro.nn.quant import BitLocation

        qmodel, mc, layout = self.build(fresh_model)
        attacker = RowHammerAttacker(mc, layout, sided="double")
        loc = BitLocation(0, 0, 7)
        before = qmodel.bit_value(loc)
        assert attacker.attempt_flip(loc)
        assert qmodel.bit_value(loc) == 1 - before

    def test_double_sided_splits_activations(self, fresh_model):
        from repro.attacks import RowHammerAttacker
        from repro.dram import CommandTrace
        from repro.nn.quant import BitLocation

        qmodel, mc, layout = self.build(fresh_model)
        trace = CommandTrace(mc)
        attacker = RowHammerAttacker(mc, layout, sided="double")
        loc = BitLocation(0, 0, 7)
        logical_row, _ = layout.locate_bit(loc)
        victim = mc.indirection.physical(logical_row)
        attacker.attempt_flip(loc, max_windows=1)
        hot = dict(trace.hottest_rows(2))
        neighbors = mc.device.mapper.neighbors(victim)
        assert set(hot) == set(neighbors)
        # Same total activations as single-sided, split across both sides.
        assert sum(hot.values()) == mc.timing.t_rh

    def test_sided_validation(self, fresh_model):
        from repro.attacks import RowHammerAttacker

        qmodel, mc, layout = self.build(fresh_model)
        with pytest.raises(ValueError):
            RowHammerAttacker(mc, layout, sided="triple")

    def test_defender_blocks_double_sided(self, fresh_model, tiny_dataset):
        from repro.attacks import BfaConfig, HammerExecutor, RowHammerAttacker
        from repro.core import DefendedDeployment

        deployment = DefendedDeployment.build(
            fresh_model,
            tiny_dataset,
            geometry=DramGeometry(
                banks=2, subarrays_per_bank=4, rows_per_subarray=64,
                row_bytes=128,
            ),
            timing=TimingParams(t_rh=1000),
            profile_rounds=2,
            profile_config=BfaConfig(max_iterations=5),
            attack_batch_size=96,
            seed=0,
        )
        attacker = RowHammerAttacker(
            deployment.controller,
            deployment.layout,
            defense=deployment.defender,
            sided="double",
        )
        executor = HammerExecutor(attacker)
        secured = sorted(deployment.defender.secured_bits)[0]
        assert not executor.execute(secured)
