"""Tests for the Attacker protocol, registry, and smart-bfa evasion."""

import pytest

from repro.attacks.bfa import BfaConfig, BitFlipAttack
from repro.attacks.protocol import AttackContext, AttackOutcome, Attacker
from repro.attacks.registry import (
    attacker,
    attacker_names,
    build_attacker,
    get_attacker,
    unregister_attacker,
)
from repro.defenses.protocol import DefenseContext, SecuredBitsDefense
from repro.defenses.radar import RadarDefense
from repro.defenses.registry import build_defense
from repro.nn.quant import BitLocation

BUILTIN_ATTACKERS = {
    "random", "bfa", "adaptive", "semi-white-box", "tbfa", "smart-bfa",
}


class TestRegistry:
    def test_builtins_registered(self):
        assert BUILTIN_ATTACKERS <= set(attacker_names())

    def test_unknown_name_lists_catalogue(self):
        with pytest.raises(KeyError, match="registered attackers"):
            get_attacker("no-such-attacker")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @attacker("random")
            def _clash():  # pragma: no cover - never built
                raise AssertionError

    def test_decorator_registers_and_builds(self):
        class _Probe(Attacker):
            name = "_probe"

            def plan(self, context):
                return []

        @attacker("_probe", kind="baseline", cost=0.5, tournament=False)
        def _build() -> Attacker:
            return _Probe()

        try:
            spec = get_attacker("_probe")
            assert spec.cost == 0.5
            assert not spec.tournament
            assert isinstance(build_attacker("_probe"), _Probe)
        finally:
            unregister_attacker("_probe")
        assert "_probe" not in attacker_names()

    def test_non_tournament_attackers(self):
        assert not get_attacker("tbfa").tournament
        assert not get_attacker("semi-white-box").tournament
        for name in ("random", "bfa", "adaptive", "smart-bfa"):
            assert get_attacker(name).tournament


class TestAttackContext:
    def test_rng_streams_deterministic(self, fresh_quantized):
        ctx = AttackContext(qmodel=fresh_quantized, seed=9)
        assert (
            ctx.rng(stream=2).integers(1 << 30)
            == ctx.rng(stream=2).integers(1 << 30)
        )
        assert (
            ctx.rng(stream=2).integers(1 << 30)
            != ctx.rng(stream=3).integers(1 << 30)
        )

    def test_batch_drawn_once_then_stable(self, fresh_quantized,
                                          tiny_dataset):
        ctx = AttackContext(
            qmodel=fresh_quantized, dataset=tiny_dataset, attack_batch=16
        )
        x1, _ = ctx.batch()
        x2, _ = ctx.batch()
        assert x1 is x2

    def test_batch_requires_dataset_or_explicit(self, fresh_quantized):
        with pytest.raises(ValueError, match="dataset"):
            AttackContext(qmodel=fresh_quantized).batch()

    def test_defense_queries_default_empty(self, fresh_quantized):
        ctx = AttackContext(qmodel=fresh_quantized)
        assert ctx.protected_bits() == frozenset()
        assert ctx.guarded_bit_positions() == frozenset()


class TestReplayExecute:
    def test_random_plan_deterministic_and_budget_sized(
        self, fresh_quantized, tiny_dataset
    ):
        ctx = AttackContext(
            qmodel=fresh_quantized, dataset=tiny_dataset, seed=4, budget=7
        )
        plan = build_attacker("random").plan(ctx)
        assert len(plan) == 7
        assert plan == build_attacker("random").plan(ctx)

    def test_default_execute_counts_blocked(self, fresh_quantized,
                                            tiny_dataset):
        ctx = AttackContext(
            qmodel=fresh_quantized, dataset=tiny_dataset, seed=4, budget=20
        )
        planned = build_attacker("random").plan(ctx)
        defense = SecuredBitsDefense(fresh_quantized, set(planned[:5]))
        ctx.executor = defense.executor()
        ctx.defense = defense
        outcome = build_attacker("random").execute(ctx)
        assert outcome.attempts == 20
        assert outcome.blocked == 5
        assert outcome.num_flips == 15
        assert outcome.attacker == "random"


class TestSmartBfa:
    def test_avoids_guarded_columns_and_stays_undetected(
        self, fresh_quantized, tiny_dataset
    ):
        radar = RadarDefense(fresh_quantized, check_interval=1_000_000)
        ctx = AttackContext(
            qmodel=fresh_quantized, dataset=tiny_dataset, seed=0, budget=4,
            executor=radar.executor(), defense=radar,
        )
        outcome = build_attacker("smart-bfa").execute(ctx)
        assert outcome.num_flips > 0
        assert all(f.bit not in {6, 7} for f in outcome.flips)
        assert radar.sweep() == []  # structurally invisible
        assert outcome.detail["avoided_bit_columns"] == 2.0

    def test_falls_back_to_plain_bfa_without_defense(
        self, quantized_factory, tiny_dataset
    ):
        def run(name):
            qmodel = quantized_factory()
            defense = build_defense("none", DefenseContext(qmodel=qmodel))
            ctx = AttackContext(
                qmodel=qmodel, dataset=tiny_dataset, seed=0, budget=4,
                executor=defense.executor(), defense=defense,
            )
            return build_attacker(name).execute(ctx)

        smart = run("smart-bfa")
        plain = run("bfa")
        assert smart.flips == plain.flips  # no guards -> same search


class TestBfaSkipColumns:
    def test_skip_bit_positions_validated(self, fresh_quantized,
                                          tiny_dataset):
        import numpy as np

        x, y = tiny_dataset.attack_batch(16, np.random.default_rng(0))
        with pytest.raises(ValueError):
            BitFlipAttack(fresh_quantized, x, y,
                          skip_bit_positions=frozenset({8}))

    @pytest.mark.parametrize("fast_scoring", [True, False])
    def test_masked_columns_never_selected(
        self, quantized_factory, tiny_dataset, fast_scoring
    ):
        import numpy as np

        qmodel = quantized_factory()
        x, y = tiny_dataset.attack_batch(64, np.random.default_rng(0))
        result = BitFlipAttack(
            qmodel, x, y,
            config=BfaConfig(max_iterations=4, exact_eval_top=4,
                             fast_scoring=fast_scoring),
            skip_bit_positions=frozenset({6, 7}),
        ).run()
        assert result.flips
        assert all(f.bit not in {6, 7} for f in result.flips)


class TestAttackOutcome:
    def test_as_metrics_flattens_detail(self):
        outcome = AttackOutcome(
            attacker="x", initial_accuracy=0.9, final_accuracy=0.7,
            attempts=5, flips=[BitLocation(0, 0, 0)], blocked=2,
            detail={"b": 1.0, "a": 2.0},
        )
        metrics = outcome.as_metrics(prefix="attack_")
        assert metrics["attack_accuracy_drop"] == pytest.approx(0.2)
        assert metrics["attack_flips"] == 1.0
        assert metrics["attack_blocked"] == 2.0
        assert metrics["attack_detail.a"] == 2.0
        assert all(isinstance(v, float) for v in metrics.values())
