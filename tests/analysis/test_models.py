"""Tests for the analytical models: Table 2, Fig. 8a, Fig. 8b, power."""

import pytest

from repro.analysis import (
    TABLE2_SPECS,
    derived_capacity_mb,
    latency_per_tref_ms,
    latency_sweep,
    max_defended_bfas,
    power_comparison,
    security_sweep,
    swaps_per_tref,
    t_op_ns,
    table2_rows,
    time_to_break_days,
)
from repro.dram import PAPER_GEOMETRY, TimingParams


class TestOverheadTable:
    def test_has_ten_frameworks(self):
        assert len(TABLE2_SPECS) == 10
        names = [s.name for s in TABLE2_SPECS]
        assert names[-1] == "DNN-Defender"

    def test_dnn_defender_zero_capacity_dram_only(self):
        dd = TABLE2_SPECS[-1]
        assert dd.total_capacity_mb == 0.0
        assert dd.dram_only
        assert not dd.uses_fast_memory

    def test_fast_memory_flags(self):
        by_name = {s.name: s for s in TABLE2_SPECS}
        assert by_name["Graphene"].uses_fast_memory
        assert by_name["RRS"].uses_fast_memory
        assert not by_name["SHADOW"].uses_fast_memory

    def test_counter_per_row_derivation_matches_published(self):
        derived = derived_capacity_mb("Counter per Row", PAPER_GEOMETRY)
        assert derived == pytest.approx(32.0)

    def test_dnn_defender_derivation_is_zero(self):
        assert derived_capacity_mb("DNN-Defender") == 0.0

    def test_underivable_returns_none(self):
        assert derived_capacity_mb("Graphene") is None

    def test_table_rows_printable(self):
        rows = table2_rows()
        assert len(rows) == 10
        assert all(len(r) == 5 for r in rows)


class TestSecurityModel:
    def test_defended_bfas_match_paper_anchors(self):
        """Fig. 8a right axis: ~7K/14K/28K/55K at 1k/2k/4k/8k."""
        expected = {1000: 7_000, 2000: 14_000, 4000: 28_000, 8000: 55_000}
        for t_rh, anchor in expected.items():
            value = max_defended_bfas(TimingParams(t_rh=t_rh))
            assert abs(value - anchor) / anchor < 0.02

    def test_time_to_break_matches_paper_anchor(self):
        """Paper: ~1180 days (DD) and ~894 days (SHADOW) at T_RH=4k."""
        t = TimingParams(t_rh=4000)
        assert time_to_break_days("dnn-defender", t) == pytest.approx(1180, abs=15)
        assert time_to_break_days("shadow", t) == pytest.approx(894, abs=10)

    def test_dd_protects_286_more_days_at_4k(self):
        t = TimingParams(t_rh=4000)
        gap = time_to_break_days("dnn-defender", t) - time_to_break_days(
            "shadow", t
        )
        assert gap == pytest.approx(286, abs=10)

    def test_linear_in_threshold(self):
        t1 = time_to_break_days("dnn-defender", TimingParams(t_rh=1000))
        t8 = time_to_break_days("dnn-defender", TimingParams(t_rh=8000))
        assert t8 / t1 == pytest.approx(8.0, rel=1e-6)

    def test_aggressor_swaps_break_within_a_day(self):
        """Section 5.1: even SRS cannot defend white-box attacks for a day."""
        for defense in ("rrs", "srs"):
            assert time_to_break_days(defense, TimingParams(t_rh=8000)) < 1.0

    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError):
            time_to_break_days("magic", TimingParams())

    def test_sweep_covers_grid(self):
        points = security_sweep()
        assert len(points) == 8
        assert {p.defense for p in points} == {"dnn-defender", "shadow"}

    def test_swaps_per_tref_formula(self):
        t = TimingParams(t_rh=4000)
        n_s = 100
        t_n = t.hammer_window_ns + t.t_swap_ns * n_s
        expected = (t.t_ref_ns / t_n) * n_s
        assert swaps_per_tref(t, n_s) == pytest.approx(expected)
        assert swaps_per_tref(t, 0) == 0.0
        with pytest.raises(ValueError):
            swaps_per_tref(t, -1)


class TestLatencyModel:
    def test_dd_below_shadow_at_all_points(self):
        for p_dd, p_sh in zip(
            latency_sweep(defenses=("dnn-defender",)),
            latency_sweep(defenses=("shadow",)),
        ):
            assert p_dd.latency_ms <= p_sh.latency_ms + 1e-9

    def test_saturates_at_half_tref(self):
        t = TimingParams(t_rh=1000)
        limit = t.t_ref_ns / 2 / 1e6
        value = latency_per_tref_ms("dnn-defender", 10**7, t)
        assert value == pytest.approx(limit, rel=1e-3)

    def test_monotonic_and_decelerating(self):
        """Fig. 8b: latency increases with BFAs, rate decelerates."""
        t = TimingParams(t_rh=4000)
        counts = [5000, 10000, 15000, 20000, 25000, 30000]
        values = [
            latency_per_tref_ms("dnn-defender", n, t) for n in counts
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))
        gains = [b - a for a, b in zip(values, values[1:])]
        assert all(b <= a + 1e-9 for a, b in zip(gains, gains[1:]))

    def test_zero_bfas_zero_latency(self):
        assert latency_per_tref_ms("dnn-defender", 0, TimingParams()) == 0.0

    def test_unpipelined_ablation_is_slower(self):
        t = TimingParams(t_rh=4000)
        assert t_op_ns("dnn-defender-unpipelined", t) > t_op_ns("dnn-defender", t)
        assert latency_per_tref_ms(
            "dnn-defender-unpipelined", 7000, t
        ) > latency_per_tref_ms("dnn-defender", 7000, t)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            latency_per_tref_ms("dnn-defender", -1, TimingParams())
        with pytest.raises(ValueError):
            t_op_ns("magic", TimingParams())


class TestPowerModel:
    def test_shadow_saving_matches_paper(self):
        """Paper: negligible 1.6% power saving vs SHADOW at T_RH=1k."""
        result = power_comparison()
        assert result["saving_vs_shadow_1k_percent"] == pytest.approx(1.6, abs=0.3)

    def test_srs_improvement_matches_paper(self):
        """Paper: 3.4x improvement vs SRS."""
        result = power_comparison()
        assert result["improvement_vs_srs"] == pytest.approx(3.4, abs=0.3)

    def test_dd_draws_least_defense_power(self):
        result = power_comparison()
        assert result["dd_power_mw"] < result["shadow_power_mw"]
        assert result["dd_power_mw"] < result["srs_power_mw"]
