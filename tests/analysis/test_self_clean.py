"""The repo lints itself clean: ``repro lint --flow src/`` has no live findings.

This is the regression gate behind the CI ``lint`` job: every REP rule —
per-file *and* the whole-program REP1xx flow tier — run over every file
under ``src/repro`` must come back empty after the committed baseline
(grandfathered findings) is applied. A new violation anywhere in
``src/`` fails this test with the full diagnostic text.
"""

from repro.analysis.lint import repo_root, run_lint


def _lint_src():
    root = repo_root()
    baseline = root / "lint-baseline.json"
    return run_lint(
        [root / "src"],
        root=root,
        baseline=baseline if baseline.exists() else None,
        flow=True,
    )


def test_src_tree_has_no_live_findings():
    report = _lint_src()
    assert report.parse_errors == []
    rendered = "\n".join(f.format_text() for f in report.findings)
    assert report.findings == [], f"new lint findings:\n{rendered}"


def test_src_tree_was_actually_scanned():
    report = _lint_src()
    # The analyzer must really have walked the tree — guard against a
    # silently-empty discovery making the gate vacuous.
    assert report.files_checked > 80


def test_baseline_is_not_a_dumping_ground():
    # The committed baseline exists to ramp new rules in, not to bury
    # violations forever; keep it empty-or-tiny and force a conscious
    # review when it grows.
    report = _lint_src()
    assert report.baselined <= 5


def test_flow_graph_covers_the_tree():
    report = _lint_src()
    graph = report.graph
    assert graph is not None
    # Every module parsed lands in the index, and the call graph is
    # substantial: real edges, measured dynamic blind spots, and
    # non-empty entry-point partitions for the REP1xx rules.
    assert graph["modules"] == report.files_checked
    assert graph["functions"] > 500
    assert graph["call_edges"] > 500
    assert graph["unresolved_calls"] > 0  # counted, never silently dropped
    entries = graph["entries"]
    assert entries["scenario_entries"] > 10
    assert entries["worker_entries"] > entries["scenario_entries"]
    assert entries["coordinator_entries"] >= 5
    assert entries["worker_reachable"] >= entries["worker_entries"]


def test_every_function_def_is_a_graph_node():
    from repro.analysis.lint.engine import build_index

    root = repo_root()
    index, parse_errors = build_index([root / "src"], root=root)
    assert parse_errors == []
    import ast

    for module in index.modules.values():
        want = sum(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            for node in ast.walk(module.ctx.tree)
        )
        have = sum(
            1 for fn in index.functions.values()
            if fn.module == module.name and not fn.is_module_body
        )
        assert have == want, (
            f"{module.name}: {want} function defs in the AST but "
            f"{have} call-graph nodes"
        )


def test_only_sanctioned_dead_suppressions():
    report = _lint_src()
    # REP006's fast-math exemption is forward-looking (the ROADMAP's
    # planned nn/fast_math.py tier) and deliberately kept; anything
    # else dead must be cleaned up or consciously added here.
    assert [
        (dead["kind"], dead["path"]) for dead in report.dead_suppressions
    ] == [("exempt", "nn/fast_math.py")]
