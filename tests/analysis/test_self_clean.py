"""The repo lints itself clean: ``repro lint src/`` has no live findings.

This is the regression gate behind the CI ``lint`` job: every REP rule
ran over every file under ``src/repro`` must come back empty after the
committed baseline (grandfathered findings) is applied. A new violation
anywhere in ``src/`` fails this test with the full diagnostic text.
"""

from repro.analysis.lint import repo_root, run_lint


def _lint_src():
    root = repo_root()
    baseline = root / "lint-baseline.json"
    return run_lint(
        [root / "src"],
        root=root,
        baseline=baseline if baseline.exists() else None,
    )


def test_src_tree_has_no_live_findings():
    report = _lint_src()
    assert report.parse_errors == []
    rendered = "\n".join(f.format_text() for f in report.findings)
    assert report.findings == [], f"new lint findings:\n{rendered}"


def test_src_tree_was_actually_scanned():
    report = _lint_src()
    # The analyzer must really have walked the tree — guard against a
    # silently-empty discovery making the gate vacuous.
    assert report.files_checked > 80


def test_baseline_is_not_a_dumping_ground():
    # The committed baseline exists to ramp new rules in, not to bury
    # violations forever; keep it empty-or-tiny and force a conscious
    # review when it grows.
    report = _lint_src()
    assert report.baselined <= 5
