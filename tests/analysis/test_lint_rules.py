"""Per-rule fixture corpus: bad fixtures fire, good twins stay silent.

Each ``repNNN_bad.py`` fixture marks every line expected to produce a
finding with a trailing ``# expect[REPNNN]`` comment; the tests parse
the markers and compare them against the engine's actual diagnostics,
so a rule that drifts (fires elsewhere, or goes quiet) fails loudly.
"""

import pathlib
import re

import pytest

from repro.analysis.lint import run_lint
from repro.analysis.lint.registry import rule_ids
from repro.analysis.lint.suppress import Baseline

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

# Per-file tier (REP0xx) plus the whole-program flow tier (REP1xx).
RULES = [f"REP{n:03d}" for n in range(1, 9)] + [
    f"REP{n}" for n in range(101, 105)
]

_MARKER = re.compile(r"#\s*expect\[(REP\d{3})\]")


def expected_lines(path: pathlib.Path, rule_id: str) -> list[int]:
    lines = []
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        match = _MARKER.search(text)
        if match and match.group(1) == rule_id:
            lines.append(lineno)
    return lines


def test_corpus_covers_every_registered_rule():
    assert rule_ids() == RULES
    for rule_id in RULES:
        assert (FIXTURES / f"{rule_id.lower()}_bad.py").exists()
        assert (FIXTURES / f"{rule_id.lower()}_good.py").exists()


@pytest.mark.parametrize("rule_id", RULES)
def test_bad_fixture_fires_on_marked_lines(rule_id):
    path = FIXTURES / f"{rule_id.lower()}_bad.py"
    report = run_lint([path], root=FIXTURES, select=[rule_id])
    assert report.parse_errors == []
    want = expected_lines(path, rule_id)
    assert want, f"{path.name} has no expect[{rule_id}] markers"
    got = sorted(finding.line for finding in report.findings)
    assert got == want
    for finding in report.findings:
        assert finding.rule == rule_id
        assert finding.hint  # every rule must ship a fix hint
        assert finding.fingerprint


@pytest.mark.parametrize("rule_id", RULES)
def test_good_fixture_is_silent(rule_id):
    path = FIXTURES / f"{rule_id.lower()}_good.py"
    report = run_lint([path], root=FIXTURES, select=[rule_id])
    assert report.parse_errors == []
    assert [f.format_text() for f in report.findings] == []


@pytest.mark.parametrize("rule_id", RULES)
def test_noqa_pragma_suppresses_each_finding(rule_id, tmp_path):
    source = FIXTURES / f"{rule_id.lower()}_bad.py"
    lines = source.read_text().splitlines()
    marked = expected_lines(source, rule_id)
    for lineno in marked:
        lines[lineno - 1] += f"  # repro: noqa[{rule_id}]"
    patched = tmp_path / source.name
    patched.write_text("\n".join(lines) + "\n")
    report = run_lint([patched], root=tmp_path, select=[rule_id])
    assert report.findings == []
    assert report.suppressed == len(marked)


@pytest.mark.parametrize("rule_id", RULES)
def test_file_pragma_suppresses_whole_file(rule_id, tmp_path):
    source = FIXTURES / f"{rule_id.lower()}_bad.py"
    patched = tmp_path / source.name
    patched.write_text(
        f"# repro: noqa-file[{rule_id}]\n" + source.read_text()
    )
    report = run_lint([patched], root=tmp_path, select=[rule_id])
    assert report.findings == []
    assert report.suppressed == len(expected_lines(source, rule_id))


@pytest.mark.parametrize("rule_id", RULES)
def test_baseline_grandfathers_each_finding(rule_id):
    path = FIXTURES / f"{rule_id.lower()}_bad.py"
    first = run_lint([path], root=FIXTURES, select=[rule_id])
    baseline = Baseline.from_findings(first.findings)
    second = run_lint(
        [path], root=FIXTURES, select=[rule_id], baseline=baseline
    )
    assert second.findings == []
    assert second.baselined == len(first.findings)


# --------------------------------------------------------------------- #
# flow-tier specifics
# --------------------------------------------------------------------- #

def test_flow_rules_are_marked_and_gated():
    from repro.analysis.lint.registry import get_rule

    for rule_id in RULES:
        assert get_rule(rule_id).flow == rule_id.startswith("REP1")
    # Without flow=True and without an explicit select, the flow tier
    # stays off: the bad fixture comes back clean.
    path = FIXTURES / "rep101_bad.py"
    report = run_lint([path], root=FIXTURES)
    assert [f for f in report.findings if f.rule.startswith("REP1")] == []
    # flow=True turns it on without any select.
    report = run_lint([path], root=FIXTURES, flow=True, ignore=None)
    assert any(f.rule == "REP101" for f in report.findings)


def test_cross_module_propagation_fires():
    # The two-module pair: a coordinator in one file mutating mutable
    # module state that a worker entry in another file reads. Scanning
    # both files must produce the finding at the cross-module write.
    pair = [
        FIXTURES / "rep103_pair_writer.py",
        FIXTURES / "rep103_pair_state.py",
    ]
    report = run_lint(pair, root=FIXTURES, select=["REP103"])
    assert [(f.path, f.rule) for f in report.findings] == [
        ("rep103_pair_writer.py", "REP103")
    ]
    want = expected_lines(pair[0], "REP103")
    assert [f.line for f in report.findings] == want
    # Scanning the writer alone severs the import edge: the state
    # module is unknown, so the conservative graph stays silent.
    alone = run_lint([pair[0]], root=FIXTURES, select=["REP103"])
    assert alone.findings == []
