"""Engine/registry/CLI behaviour of ``repro lint``.

Covers the pieces the fixture corpus does not: registry invariants,
pragma parsing edge cases, baseline round-trips, select/ignore
filtering, fingerprint stability under line drift, the CLI surface and
the pinned JSON schema (the future run-database service ingests it).
"""

import ast
import json

import pytest

from repro.analysis.lint import (
    Baseline,
    Pragmas,
    run_lint,
    to_json_text,
)
from repro.analysis.lint.registry import (
    LintRule,
    get_rule,
    iter_rules,
    path_is_exempt,
    register,
    rule_ids,
    unregister,
)
from repro.cli import main


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #

def test_rule_ids_sorted_and_complete():
    ids = rule_ids()
    assert ids == sorted(ids)
    assert ids == [f"REP{n:03d}" for n in range(1, 9)] + [
        f"REP{n}" for n in range(101, 105)
    ]


def test_rules_carry_docs_metadata():
    for spec in iter_rules():
        assert spec.name and spec.summary and spec.hint
        assert spec.rationale, f"{spec.id} must cite the bug class it codifies"


def test_unknown_rule_raises_with_catalogue():
    with pytest.raises(KeyError, match="REP001"):
        get_rule("REP999")


def test_register_rejects_bad_id_and_duplicates():
    spec = LintRule(
        id="REP900", name="t", summary="t", hint="t",
        check=lambda ctx: iter(()),
    )
    register(spec)
    try:
        with pytest.raises(ValueError, match="already registered"):
            register(spec)
    finally:
        unregister("REP900")
    with pytest.raises(ValueError, match="REP"):
        register(
            LintRule(id="X1", name="t", summary="t", hint="t",
                     check=lambda ctx: iter(()))
        )


def test_path_is_exempt_matches_segment_suffix_only():
    spec = LintRule(
        id="REP901", name="t", summary="t", hint="t",
        check=lambda ctx: iter(()), exempt=("cli.py", "nn/seeding.py"),
    )
    assert path_is_exempt("src/repro/cli.py", spec)
    assert path_is_exempt("cli.py", spec)
    assert path_is_exempt("src/repro/nn/seeding.py", spec)
    assert not path_is_exempt("tools/mycli.py", spec)
    assert not path_is_exempt("src/repro/nn/other.py", spec)


# --------------------------------------------------------------------- #
# pragmas
# --------------------------------------------------------------------- #

def test_line_pragma_scopes_to_listed_rules():
    pragmas = Pragmas.scan(["x = 1  # repro: noqa[REP001, REP005]"])
    assert pragmas.suppresses(1, "REP001")
    assert pragmas.suppresses(1, "REP005")
    assert not pragmas.suppresses(1, "REP003")
    assert not pragmas.suppresses(2, "REP001")


def test_bare_pragma_waives_every_rule_on_that_line():
    pragmas = Pragmas.scan(["x = 1  # repro: noqa"])
    assert pragmas.suppresses(1, "REP001")
    assert pragmas.suppresses(1, "REP008")


def test_file_pragma_waives_rule_everywhere():
    pragmas = Pragmas.scan(["# repro: noqa-file[REP007]", "x = 1"])
    assert pragmas.suppresses(99, "REP007")
    assert not pragmas.suppresses(99, "REP001")


# --------------------------------------------------------------------- #
# baseline round-trip + fingerprint stability
# --------------------------------------------------------------------- #

BAD_SNIPPET = (
    "import os\n"
    "\n"
    "def cache_dir():\n"
    '    return os.environ["REPRO_CACHE_DIR"]\n'
)


def test_baseline_save_load_round_trip(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BAD_SNIPPET)
    report = run_lint([target], root=tmp_path, select=["REP003"])
    assert len(report.findings) == 1
    base_path = tmp_path / "baseline.json"
    Baseline.from_findings(report.findings).save(base_path)
    reloaded = Baseline.load(base_path)
    again = run_lint(
        [target], root=tmp_path, select=["REP003"], baseline=reloaded
    )
    assert again.findings == []
    assert again.baselined == 1


def test_baseline_load_rejects_wrong_version(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "findings": {}}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(bad)


def test_missing_baseline_file_loads_empty(tmp_path):
    base = Baseline.load(tmp_path / "absent.json")
    assert base.fingerprints == {}


def test_fingerprint_survives_line_drift(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BAD_SNIPPET)
    before = run_lint([target], root=tmp_path, select=["REP003"])
    target.write_text("# an unrelated comment above\n" + BAD_SNIPPET)
    after = run_lint([target], root=tmp_path, select=["REP003"])
    assert before.findings[0].line != after.findings[0].line
    assert before.findings[0].fingerprint == after.findings[0].fingerprint


def test_duplicate_lines_get_distinct_fingerprints(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import os\n"
        'a = os.getenv("X")\n'
        'a = os.getenv("X")\n'
    )
    report = run_lint([target], root=tmp_path, select=["REP003"])
    prints = [f.fingerprint for f in report.findings]
    assert len(prints) == 2
    assert len(set(prints)) == 2


# --------------------------------------------------------------------- #
# select / ignore / parse errors
# --------------------------------------------------------------------- #

def test_select_and_ignore_filter_rules(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import os\n"
        "cache = {}\n"
        'a = os.getenv("X")\n'
    )
    everything = run_lint([target], root=tmp_path)
    assert {f.rule for f in everything.findings} == {"REP003", "REP007"}
    only_env = run_lint([target], root=tmp_path, select=["REP003"])
    assert {f.rule for f in only_env.findings} == {"REP003"}
    no_env = run_lint([target], root=tmp_path, ignore=["REP003"])
    assert {f.rule for f in no_env.findings} == {"REP007"}


def test_syntax_error_is_reported_not_raised(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def oops(:\n")
    report = run_lint([target], root=tmp_path)
    assert report.findings == []
    assert len(report.parse_errors) == 1
    assert "broken.py" in report.parse_errors[0]


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def test_cli_exit_codes_and_text_output(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(BAD_SNIPPET)
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n")
    assert main(["lint", str(clean), "--baseline", "none"]) == 0
    assert main(["lint", str(dirty), "--baseline", "none"]) == 1
    out = capsys.readouterr().out
    assert "REP003" in out
    assert "hint:" in out


def test_cli_select_and_list_rules(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(BAD_SNIPPET)
    assert main(
        ["lint", str(dirty), "--select", "REP001", "--baseline", "none"]
    ) == 0
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "unseeded-rng" in out and "REP008" in out


def test_cli_write_baseline_then_green(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(BAD_SNIPPET)
    base = tmp_path / "baseline.json"
    assert main(
        ["lint", str(dirty), "--baseline", str(base), "--write-baseline"]
    ) == 0
    assert base.exists()
    # Grandfathered finding: gated run is green; dropping the baseline
    # resurfaces it.
    assert main(["lint", str(dirty), "--baseline", str(base)]) == 0
    capsys.readouterr()
    assert main(["lint", str(dirty), "--baseline", "none"]) == 1


def test_cli_stats_output(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(BAD_SNIPPET)
    assert main(
        ["lint", str(dirty), "--baseline", "none", "--stats"]
    ) == 1
    out = capsys.readouterr().out
    assert "findings per rule" in out
    assert "findings per package" in out


# --------------------------------------------------------------------- #
# JSON schema (pinned)
# --------------------------------------------------------------------- #

def test_json_schema_is_stable(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(BAD_SNIPPET)
    assert main(
        ["lint", str(dirty), "--format", "json", "--baseline", "none"]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {
        "version", "tool", "files_checked", "findings", "stats",
        "parse_errors", "graph", "dead_suppressions",
    }
    assert payload["version"] == 2
    assert payload["tool"] == "repro-lint"
    assert payload["files_checked"] == 1
    assert payload["graph"] is None  # flow phase off by default
    (finding,) = payload["findings"]
    assert set(finding) == {
        "path", "line", "col", "rule", "message", "hint", "fingerprint",
    }
    assert finding["rule"] == "REP003"
    assert finding["line"] == 4 and finding["col"] >= 1
    assert set(payload["stats"]) == {
        "total", "by_rule", "by_package", "suppressed", "baselined",
        "files_checked", "dead_suppressions",
    }
    assert payload["stats"]["by_rule"] == {"REP003": 1}


def test_json_graph_payload_under_flow(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("def helper():\n    return 1\n")
    assert main(
        ["lint", str(target), "--flow", "--format", "json",
         "--baseline", "none"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    graph = payload["graph"]
    assert set(graph) == {
        "modules", "functions", "call_edges", "external_calls",
        "unresolved_calls", "entries",
    }
    assert graph["modules"] == 1 and graph["functions"] == 1
    assert set(graph["entries"]) == {
        "scenario_entries", "worker_entries", "coordinator_entries",
        "scenario_reachable", "worker_reachable", "coordinator_reachable",
    }


def test_to_json_text_is_deterministic(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BAD_SNIPPET)
    first = to_json_text(run_lint([target], root=tmp_path))
    second = to_json_text(run_lint([target], root=tmp_path))
    assert first == second
    assert first.endswith("\n")


def test_rules_are_pure_ast_checks(tmp_path):
    # Sanity: the engine must never import/execute the analyzed file.
    target = tmp_path / "sideeffect.py"
    marker = tmp_path / "ran.txt"
    target.write_text(
        "import pathlib\n"
        f"pathlib.Path({str(marker)!r}).write_text('ran')"
        "  # repro: noqa[REP005]\n"
    )
    run_lint([target], root=tmp_path)
    assert not marker.exists()
    assert isinstance(ast.parse(target.read_text()), ast.Module)


# --------------------------------------------------------------------- #
# fingerprint robustness under line drift
# --------------------------------------------------------------------- #

DRIFT_SNIPPETS = {
    "multiline-statement": (
        "import os\n"
        "value = os.environ[\n"
        '    "REPRO_X"\n'
        "]\n"
    ),
    "decorated-def": (
        "import functools\n"
        "import os\n"
        "@functools.lru_cache\n"
        "def f():\n"
        '    return os.getenv("REPRO_X")\n'
    ),
    "walrus-body": (
        "import os\n"
        'y = (z := os.getenv("REPRO_X"))\n'
    ),
    "lambda-body": (
        "import os\n"
        'f = lambda: os.getenv("REPRO_X")\n'
    ),
    "duplicate-identical-lines": (
        "import os\n"
        'a = os.getenv("REPRO_X")\n'
        'a = os.getenv("REPRO_X")\n'
    ),
}


@pytest.mark.parametrize("shape", sorted(DRIFT_SNIPPETS))
def test_fingerprints_stable_under_line_drift(shape, tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(DRIFT_SNIPPETS[shape])
    before = run_lint([target], root=tmp_path, select=["REP003"])
    assert before.findings, f"snippet {shape!r} produced no findings"
    target.write_text("# drift\n# drift\n" + DRIFT_SNIPPETS[shape])
    after = run_lint([target], root=tmp_path, select=["REP003"])
    assert [f.fingerprint for f in before.findings] == [
        f.fingerprint for f in after.findings
    ]
    for old, new in zip(before.findings, after.findings):
        assert new.line == old.line + 2


# --------------------------------------------------------------------- #
# dead-suppression detection
# --------------------------------------------------------------------- #

def _dead_of_kind(report, kind):
    # Linting one tmp file legitimately reports the selected rule's
    # repo-tree exempt paths as unmatched; these tests care about the
    # pragma/baseline kinds only.
    return [d for d in report.dead_suppressions if d["kind"] == kind]


def test_dead_noqa_pragma_is_reported(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("VALUE = 1  # repro: noqa[REP003]\n")
    report = run_lint([target], root=tmp_path, select=["REP003"])
    assert report.findings == []
    assert [(d["kind"], d["line"]) for d in _dead_of_kind(report, "noqa")] == [
        ("noqa", 1)
    ]
    assert report.stats()["dead_suppressions"] == len(report.dead_suppressions)


def test_live_noqa_pragma_is_not_reported(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import os\n"
        'a = os.getenv("X")  # repro: noqa[REP003]\n'
    )
    report = run_lint([target], root=tmp_path, select=["REP003"])
    assert report.suppressed == 1
    assert _dead_of_kind(report, "noqa") == []


def test_pragma_in_docstring_is_inert(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        '"""Example docs: suppress with ``# repro: noqa[REP003]``."""\n'
        "import os\n"
        'a = os.getenv("X")\n'
    )
    report = run_lint([target], root=tmp_path, select=["REP003"])
    # Mentioning pragma syntax in a docstring neither suppresses the
    # finding on that line nor registers as a dead suppression.
    assert len(report.findings) == 1
    assert _dead_of_kind(report, "noqa") == []


def test_dead_baseline_entry_is_reported(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import os\n" 'a = os.getenv("X")\n')
    first = run_lint([target], root=tmp_path, select=["REP003"])
    baseline = Baseline.from_findings(first.findings)
    target.write_text("VALUE = 1\n")  # the violation is gone
    second = run_lint(
        [target], root=tmp_path, select=["REP003"], baseline=baseline
    )
    assert second.findings == []
    assert [d["kind"] for d in _dead_of_kind(second, "baseline")] == [
        "baseline"
    ]


def test_dead_exempt_path_is_reported(tmp_path):
    spec = LintRule(
        id="REP902", name="t", summary="t", hint="t",
        check=lambda ctx: iter(()), exempt=("ghost/only_on_paper.py",),
    )
    register(spec)
    try:
        target = tmp_path / "mod.py"
        target.write_text("VALUE = 1\n")
        report = run_lint([target], root=tmp_path, select=["REP902"])
    finally:
        unregister("REP902")
    assert [(d["kind"], d["path"]) for d in report.dead_suppressions] == [
        ("exempt", "ghost/only_on_paper.py")
    ]


def test_cli_check_suppressions_gates(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("VALUE = 1  # repro: noqa[REP003]\n")
    assert main(
        ["lint", str(target), "--baseline", "none", "--select", "REP003"]
    ) == 0
    assert main(
        ["lint", str(target), "--baseline", "none", "--select", "REP003",
         "--check-suppressions"]
    ) == 1
    out = capsys.readouterr().out
    assert "dead suppressions" in out


# --------------------------------------------------------------------- #
# baseline ratchet
# --------------------------------------------------------------------- #

def test_baseline_gained_over():
    old = Baseline(fingerprints={"aa": {"rule": "REP003"}})
    same = Baseline(fingerprints={"aa": {"rule": "REP003"}})
    grown = Baseline(
        fingerprints={"aa": {"rule": "REP003"}, "bb": {"rule": "REP007"}}
    )
    shrunk = Baseline(fingerprints={})
    assert same.gained_over(old) == []
    assert grown.gained_over(old) == ["bb"]
    assert shrunk.gained_over(old) == []


def test_cli_ratchet_fails_on_growth(tmp_path, capsys, monkeypatch):
    repo = tmp_path / "repo"
    repo.mkdir()
    old = tmp_path / "old-baseline.json"
    Baseline(fingerprints={"aa": {"rule": "REP003", "path": "x.py"}}).save(old)
    Baseline(
        fingerprints={
            "aa": {"rule": "REP003", "path": "x.py"},
            "bb": {"rule": "REP007", "path": "y.py"},
        }
    ).save(repo / "lint-baseline.json")
    import repro.analysis.lint.engine as engine_mod

    monkeypatch.setattr(engine_mod, "_REPO_ROOT", repo)
    assert main(["lint", "--ratchet", str(old)]) == 1
    out = capsys.readouterr().out
    assert "gained" in out and "bb" in out
    # Shrinking (or staying equal) passes.
    Baseline(fingerprints={}).save(repo / "lint-baseline.json")
    assert main(["lint", "--ratchet", str(old)]) == 0
    assert "ratchet ok" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# graph debug command
# --------------------------------------------------------------------- #

def test_cli_graph_prints_callers_callees_and_facts(tmp_path, capsys,
                                                    monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text(
        "def outer():  # repro: flow-entry[coordinator]\n"
        "    return inner()\n"
        "\n"
        "def inner():\n"
        "    return 1\n"
    )
    import repro.analysis.lint.engine as engine_mod

    monkeypatch.setattr(engine_mod, "_REPO_ROOT", tmp_path)
    assert main(["lint", "graph", "mod.inner", str(target)]) == 0
    out = capsys.readouterr().out
    assert "mod.inner" in out
    assert "<- mod.outer" in out
    assert "coordinator-reachable" in out


def test_cli_graph_unknown_symbol_is_user_error(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("def f():\n    return 1\n")
    assert main(["lint", "graph", "no.such.symbol", str(target)]) == 2
    assert "unknown symbol" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# flow determinism (byte-identical across runs and hash seeds)
# --------------------------------------------------------------------- #

def test_flow_json_deterministic_across_hash_seeds(tmp_path):
    import os
    import subprocess
    import sys

    script = (
        "import json, pathlib, sys\n"
        "from repro.analysis.lint import run_lint, to_json_text\n"
        "root = pathlib.Path(sys.argv[1])\n"
        "report = run_lint([root / 'src'], root=root, flow=True)\n"
        "sys.stdout.write(to_json_text(report))\n"
    )
    from repro.analysis.lint import repo_root

    outputs = []
    for hash_seed in ("1", "4242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(repo_root() / "src")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(repo_root())],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    payload = json.loads(outputs[0])
    assert payload["graph"]["functions"] > 500
