"""Fixture: REP007-clean — import-time registries, immutable globals."""

REGISTRY = {}
_DEFAULTS = {"trials": 32}
__all__ = ["REGISTRY", "lookup"]

limit = 8  # immutable module constant: fine


def lookup(name):
    return REGISTRY.get(name)
