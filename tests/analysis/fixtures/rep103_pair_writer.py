"""Cross-module REP103 pair, module 2: a coordinator writing module 1's state."""

import rep103_pair_state as state


def coordinate(plan):  # repro: flow-entry[coordinator]
    state.REGISTRY["plan"] = plan  # expect[REP103]
    return plan
