"""Fixture: REP008 violations — scenario trial fns off-contract."""
import json

from repro.experiments import scenario


@scenario("fixture-unseeded", trials=4)
def unseeded_trial(ctx):  # expect[REP008]
    return {"accuracy": 0.5}


@scenario("fixture-direct-write", trials=4)
def writing_trial(ctx):
    rng = ctx.rng("noise")
    value = float(rng.normal())
    ctx.params["out"].write_text(json.dumps({"value": value}))  # expect[REP008]
    return {"value": value}
