"""Fixture: REP006-clean — reference-order contractions only."""
import numpy as np


def contract(a, b):
    return np.einsum("ij,jk->ik", a, b)


def contract_explicit(a, b):
    return np.einsum("ij,jk->ik", a, b, optimize=False)


def total(values):
    return sum(sorted(values))


def total_list(values):
    return sum(values)
