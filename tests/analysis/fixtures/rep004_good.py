"""Fixture: REP004-clean — hook attach paired with close()/__exit__."""


class TidyProbe:
    def __init__(self, controller):
        self.controller = controller
        self.events = []
        controller.register_activate_hook(self._on_activate)

    def _on_activate(self, event):
        self.events.append(event)

    def close(self):
        self.controller.unregister_activate_hook(self._on_activate)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
