"""Fixture: REP008-clean — seeded trials, runner-owned artifacts."""

from repro.experiments import scenario


@scenario("fixture-seeded", trials=4)
def seeded_trial(ctx):
    rng = ctx.rng("trial")
    return {"value": float(rng.normal())}


@scenario("fixture-deterministic", trials=1, deterministic=True)
def deterministic_trial(ctx):
    return {"value": 1.0}


@scenario("fixture-delegated", trials=2)
def delegated_trial(ctx):
    return run_body(ctx)


def run_body(ctx):
    return {"seed": ctx.seed}
