"""Fixture: REP006 violations — float-order hazards."""
import numpy as np


def fast_contract(a, b):
    return np.einsum("ij,jk->ik", a, b, optimize=True)  # expect[REP006]


def greedy_contract(a, b):
    return np.einsum("ij,jk->ik", a, b, optimize="greedy")  # expect[REP006]


def dot(a, b):
    return np.tensordot(a, b, axes=1)  # expect[REP006]


def total(values):
    return sum({v * v for v in values})  # expect[REP006]


def total_gen():
    return sum(v for v in {1.0, 2.0, 3.0})  # expect[REP006]
