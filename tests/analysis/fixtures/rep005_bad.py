"""Fixture: REP005 violations — in-place writes that can tear."""
import json
import pathlib


def dump_metrics(path: pathlib.Path, metrics: dict) -> None:
    path.write_text(json.dumps(metrics))  # expect[REP005]


def dump_blob(path: pathlib.Path, blob: bytes) -> None:
    path.write_bytes(blob)  # expect[REP005]


def dump_lines(path: pathlib.Path, lines) -> None:
    with open(path, "w") as fh:  # expect[REP005]
        fh.writelines(lines)


def rewrite(path: pathlib.Path, text: str) -> None:
    with path.open(mode="w") as fh:  # expect[REP005]
        fh.write(text)
