"""REP101 fixture: helpers on a trial path that reseed or use fresh entropy."""

import random

import numpy as np


def run_trial(ctx):  # repro: flow-entry[scenario]
    noise = helper_reseeds()
    jitter = helper_fresh()
    shuffle = helper_stdlib()
    good = helper_threads(ctx.seed)
    return noise + jitter + shuffle + good


def helper_reseeds():
    rng = np.random.default_rng(1234)  # expect[REP101]
    return rng.normal()


def helper_fresh():
    rng = np.random.default_rng()  # expect[REP101]
    return rng.normal()


def helper_stdlib():
    rng = random.Random(42)  # expect[REP101]
    return rng.random()


def helper_threads(seed):
    rng = np.random.default_rng(seed)
    return rng.normal()
