"""Fixture: REP007 violations — fork-unsafe module state."""
import collections

cache = {}  # expect[REP007]
pending = []  # expect[REP007]
by_kind = collections.defaultdict(list)  # expect[REP007]


def remember(key, value):
    global cache  # expect[REP007]
    cache[key] = value
