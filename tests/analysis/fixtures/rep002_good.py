"""Fixture: REP002-clean — serialization derived from inputs only."""
import time


class TrialRecord:
    def __init__(self, metrics, tags):
        self.metrics = metrics
        self.tags = set(tags)

    def to_json(self):
        payload = dict(self.metrics)
        for tag in sorted(self.tags):
            payload[tag] = True
        return payload

    def run(self):
        started = time.time()  # timing outside a serialization path: fine
        return started
