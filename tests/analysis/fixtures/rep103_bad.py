"""REP103 fixture: coordinator-side writes raced against worker reads."""

_CACHE: dict = {}

_EVENTS: list = []


def dispatch(plan):  # repro: flow-entry[coordinator]
    _CACHE["plan"] = plan  # expect[REP103]
    return [work(item) for item in plan]


def work(item):  # repro: flow-entry[worker]
    return _CACHE.get("plan", 0) + item


def coordinate_retries(n):  # repro: flow-entry[coordinator]
    _EVENTS.append(n)  # expect[REP103]
    return drain()


def drain():  # repro: flow-entry[worker]
    return list(_EVENTS)
