"""REP103 good twin: worker-local lazy caches and coordinator-only state."""

_MEMO: dict = {}

_AUDIT: list = []


def run_worker(item):  # repro: flow-entry[worker]
    # Lazy cache the worker path itself populates: every process fills
    # its own copy, so there is no coordinator/worker divergence.
    if item not in _MEMO:
        _MEMO[item] = compute(item)
    return _MEMO[item]


def compute(item):
    return item * 2


def coordinate(plan):  # repro: flow-entry[coordinator]
    # Written and read on the coordinator side only.
    _AUDIT.append(plan)
    return summarize()


def summarize():
    return len(_AUDIT)
