"""REP102 fixture: env re-read downstream + worker env from os.environ."""

import os
import subprocess

from repro.utils.env import env_str


def coordinate():
    mode = env_str("REPRO_MODE", "fast")
    return launch(mode)


def launch(mode):
    again = env_str("REPRO_MODE", "fast")  # expect[REP102]
    cmd = ["repro", "run", again or mode]
    env = dict(os.environ)
    return subprocess.run(cmd, env=env)  # expect[REP102]
