"""Fixture: REP003-clean — reads via env_str, mutation stays allowed."""
import contextlib
import os

from repro.utils.env import env_flag, env_str


def cache_dir():
    return env_str("REPRO_CACHE_DIR", "")


def enabled():
    return env_flag("REPRO_FAST_PATH", True)


@contextlib.contextmanager
def scoped_override(var, value):
    saved = env_str(var)
    os.environ[var] = value  # Store: process-local override, not a read
    try:
        yield
    finally:
        os.environ.pop(var, None)  # mutation/restore is sanctioned
        if saved is not None:
            os.environ[var] = saved
