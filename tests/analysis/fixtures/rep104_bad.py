"""REP104 fixture: hook objects that never reach close() on every path."""


class Probe:
    """Attaches itself to the controller's activate-hook list."""

    def __init__(self, controller):
        self.controller = controller
        controller.register_activate_hook(self.on_activate)

    def on_activate(self, command):
        pass

    def close(self):
        self.controller.unregister_activate_hook(self.on_activate)


class SubProbe(Probe):
    """Hookiness is inherited through the project base chain."""


def leak_plain(controller):
    probe = Probe(controller)  # expect[REP104]
    return controller.stats()


def leak_on_early_return(controller, skip):
    probe = Probe(controller)  # expect[REP104]
    if skip:
        return None
    probe.close()
    return controller.stats()


def leak_subclass(controller):
    probe = SubProbe(controller)  # expect[REP104]
    return controller.stats()
