"""Fixture: REP001 violations — unseeded / global-state RNG."""
import random

import numpy as np


def init_weights(shape):
    rng = np.random.default_rng()  # expect[REP001]
    return rng.normal(size=shape)


def legacy_noise(n):
    np.random.seed(0)  # expect[REP001]
    return np.random.randn(n)  # expect[REP001]


def pick(items):
    coin = random.Random()  # expect[REP001]
    return coin.choice(items)


def sample_floats(n):
    return [random.random() for _ in range(n)]  # expect[REP001]
