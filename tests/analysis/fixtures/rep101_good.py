"""REP101 good twin: every RNG on the trial path flows from a parameter."""

import numpy as np


def run_trial(ctx):  # repro: flow-entry[scenario]
    child_seed = ctx.seed + 1
    return helper_threads(ctx.seed) + helper_derives(child_seed)


def helper_threads(seed):
    rng = np.random.default_rng(seed)
    return rng.normal()


def helper_derives(seed):
    stream = np.random.SeedSequence(seed)
    rng = np.random.default_rng(stream)
    return rng.normal()


def offline_tool():
    # Not reachable from any scenario entry: REP101 stays out of the
    # way (REP001/REP008 own the per-file story for sites like this).
    rng = np.random.default_rng(7)
    return rng.normal()
