"""REP102 good twin: read the env once, thread the value, ship extras only."""

import subprocess

from repro.utils.env import env_str


def coordinate():
    mode = env_str("REPRO_MODE", "fast")
    return launch(mode)


def launch(mode):
    cmd = ["repro", "run", mode]
    extras = {"REPRO_MODE": mode}
    return subprocess.run(cmd, env=extras)
