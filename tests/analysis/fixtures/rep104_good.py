"""REP104 good twin: every hook object is detached or handed off."""


class Tracker:
    def __init__(self, controller):
        self.controller = controller
        controller.register_command_hook(self.on_command)

    def on_command(self, command):
        pass

    def close(self):
        self.controller.unregister_command_hook(self.on_command)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def managed_by_finally(controller):
    tracker = Tracker(controller)
    try:
        return controller.stats()
    finally:
        tracker.close()


def managed_by_with(controller):
    tracker = Tracker(controller)
    with tracker:
        return controller.stats()


def ownership_returned(controller):
    tracker = Tracker(controller)
    return tracker


def ownership_stored(registry, controller):
    tracker = Tracker(controller)
    registry["tracker"] = tracker
    return registry


def ownership_passed(bus, controller):
    tracker = Tracker(controller)
    bus.adopt(tracker)
    return bus
