"""Cross-module REP103 pair, module 1: the shared mutable registry."""

REGISTRY: dict = {}


def read_plan():  # repro: flow-entry[worker]
    return REGISTRY.get("plan")
