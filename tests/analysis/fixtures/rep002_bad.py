"""Fixture: REP002 violations — nondeterminism inside serialization."""
import datetime
import time
import uuid


class TrialRecord:
    def __init__(self, metrics):
        self.metrics = metrics

    def to_json(self):
        payload = dict(self.metrics)
        payload["written_at"] = time.time()  # expect[REP002]
        payload["id"] = str(uuid.uuid4())  # expect[REP002]
        for tag in {"x", "y"}:  # expect[REP002]
            payload[tag] = True
        return payload

    def save(self, path):
        stamp = datetime.datetime.now()  # expect[REP002]
        names = [t for t in {"m", "n"}]  # expect[REP002]
        return stamp, names
