"""Fixture: REP004 violation — hooks attached with no detach path."""


class LeakyProbe:  # expect[REP004]
    """Attaches to the controller and never lets go."""

    def __init__(self, controller):
        self.events = []
        controller.register_activate_hook(self._on_activate)
        controller.register_command_hook(self._on_command)

    def _on_activate(self, event):
        self.events.append(event)

    def _on_command(self, event):
        self.events.append(event)
