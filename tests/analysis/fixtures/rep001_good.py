"""Fixture: REP001-clean — seeded generators threaded explicitly."""
import random

import numpy as np


def init_weights(shape, rng):
    return rng.normal(size=shape)


def make_rng(seed):
    return np.random.default_rng(seed)


def make_rng_kw(seed):
    return np.random.default_rng(seed=seed)


def pick(items, seed):
    return random.Random(seed).choice(items)
