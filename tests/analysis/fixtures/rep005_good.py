"""Fixture: REP005-clean — atomic writes and read-only opens."""
import json
import os
import pathlib


def atomic_write_text(path: pathlib.Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(text)  # sanctioned: inside the atomic helper
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def dump_metrics(path, metrics):
    atomic_write_text(path, json.dumps(metrics))


def read_metrics(path):
    with open(path) as fh:
        return json.load(fh)


def read_explicit(path):
    with open(path, "r") as fh:
        return fh.read()
