"""Fixture: REP003 violations — raw environment reads."""
import os


def cache_dir():
    return os.environ["REPRO_CACHE_DIR"]  # expect[REP003]


def results_dir():
    return os.environ.get("REPRO_RESULTS_DIR", "")  # expect[REP003]


def flag():
    return os.getenv("REPRO_FLAG")  # expect[REP003]


def snapshot():
    return dict(os.environ)  # expect[REP003]
