"""Unit tests for the whole-program index (pass 1) and dataflow (pass 2).

The fixture-corpus tests prove the REP1xx rules behave end to end; this
file pins the machinery underneath: symbol collection, import and
re-export resolution, method lookup through project base classes, the
conservative no-edge treatment of dynamic dispatch (counted, never
guessed), and the worklist engine's fixpoint/determinism properties.
"""

import ast
import pathlib
import textwrap

import pytest

from repro.analysis.lint.callgraph import (
    ProjectIndex,
    iter_scope,
    module_name,
)
from repro.analysis.lint.dataflow import (
    expr_names,
    invert_edges,
    param_derived_names,
    propagate,
    reachable,
)
from repro.analysis.lint.engine import FileContext, build_index


def make_tree(tmp_path: pathlib.Path, files: dict[str, str]) -> pathlib.Path:
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def index_of(tmp_path, files) -> ProjectIndex:
    root = make_tree(tmp_path, files)
    index, errors = build_index([root], root=root)
    assert errors == []
    return index


# --------------------------------------------------------------------- #
# naming and scopes
# --------------------------------------------------------------------- #

def test_module_name_shapes():
    assert module_name("src/repro/experiments/runner.py") == (
        "repro.experiments.runner"
    )
    assert module_name("src/repro/nn/__init__.py") == "repro.nn"
    assert module_name("rep101_bad.py") == "rep101_bad"


def test_iter_scope_stops_at_nested_defs_but_yields_them():
    tree = ast.parse(
        "def outer():\n"
        "    a = 1\n"
        "    def inner():\n"
        "        hidden = 2\n"
        "    b = (lambda: shared)\n"
    )
    outer = tree.body[0]
    names = {
        node.id for node in iter_scope(outer.body)
        if isinstance(node, ast.Name)
    }
    assert "a" in names and "b" in names
    assert "shared" in names  # lambdas share the enclosing scope
    assert "hidden" not in names  # nested def bodies are their own scope
    kinds = [type(node).__name__ for node in iter_scope(outer.body)]
    assert "FunctionDef" in kinds  # the nested def statement is yielded


# --------------------------------------------------------------------- #
# symbol tables and call edges
# --------------------------------------------------------------------- #

def test_local_and_imported_calls_resolve(tmp_path):
    index = index_of(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/util.py": "def helper():\n    return 1\n",
        "pkg/main.py": (
            "from pkg.util import helper\n"
            "def entry():\n"
            "    local()\n"
            "    return helper()\n"
            "def local():\n"
            "    return 2\n"
        ),
    })
    assert index.callees["pkg.main.entry"] == [
        "pkg.main.local", "pkg.util.helper",
    ]
    assert index.callers["pkg.util.helper"] == ["pkg.main.entry"]


def test_reexport_through_package_init_resolves(tmp_path):
    index = index_of(tmp_path, {
        "pkg/__init__.py": "from pkg.impl import api\n",
        "pkg/impl.py": "def api():\n    return 1\n",
        "user.py": (
            "from pkg import api\n"
            "def caller():\n"
            "    return api()\n"
        ),
    })
    assert index.callees["user.caller"] == ["pkg.impl.api"]
    # resolve_symbol follows the same chain for the graph CLI.
    assert index.resolve_symbol("pkg.api").qualname == "pkg.impl.api"


def test_method_resolution_through_self_and_bases(tmp_path):
    index = index_of(tmp_path, {
        "mod.py": (
            "class Base:\n"
            "    def shared(self):\n"
            "        return 1\n"
            "class Child(Base):\n"
            "    def run(self):\n"
            "        return self.shared()\n"
        ),
    })
    assert index.classes["mod.Child"].bases == ("mod.Base",)
    assert index.callees["mod.Child.run"] == ["mod.Base.shared"]


def test_local_constructor_types_methods_and_init_edge(tmp_path):
    index = index_of(tmp_path, {
        "mod.py": (
            "class Widget:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            "    def poke(self):\n"
            "        return self.n\n"
            "def use():\n"
            "    w = Widget()\n"
            "    return w.poke()\n"
        ),
    })
    assert index.callees["mod.use"] == [
        "mod.Widget.__init__", "mod.Widget.poke",
    ]


def test_nested_def_gets_a_defines_edge(tmp_path):
    index = index_of(tmp_path, {
        "mod.py": (
            "def outer(items):\n"
            "    def key(item):\n"
            "        return item.rank\n"
            "    return sorted(items, key=key)\n"
        ),
    })
    # Even though `key` is only passed as a callback (a dynamic call the
    # graph cannot see), the defines-edge keeps its body reachable.
    assert "mod.outer.key" in index.callees["mod.outer"]


def test_dynamic_dispatch_is_counted_not_guessed(tmp_path):
    index = index_of(tmp_path, {
        "mod.py": (
            "def call_through(fn, obj):\n"
            "    fn()\n"
            "    getattr(obj, 'method')()\n"
            "    obj.anything()\n"
        ),
    })
    assert index.callees.get("mod.call_through", []) == []
    # fn(), the getattr(...)() result, and obj.anything() are dynamic;
    # getattr itself resolves to builtins (external).
    assert index.unresolved["mod.call_through"] == 3
    assert "builtins.getattr" in index.external_calls["mod.call_through"]
    assert index.summary()["unresolved_calls"] == 3


def test_module_bodies_are_nodes_but_not_function_defs(tmp_path):
    index = index_of(tmp_path, {
        "mod.py": (
            "def setup():\n"
            "    return 1\n"
            "STATE = setup()\n"
        ),
    })
    assert index.callees["mod.<module>"] == ["mod.setup"]
    assert [fn.qualname for fn in index.function_defs()] == ["mod.setup"]
    assert index.summary()["functions"] == 1


def test_build_is_deterministic(tmp_path):
    files = {
        "a.py": "from b import go\ndef one():\n    return go()\n",
        "b.py": "def go():\n    return 2\ndef two():\n    return go()\n",
    }
    root = make_tree(tmp_path, files)
    first, _ = build_index([root], root=root)
    second, _ = build_index([root], root=root)
    assert first.callees == second.callees
    assert first.callers == second.callers
    assert first.summary() == second.summary()


# --------------------------------------------------------------------- #
# dataflow primitives
# --------------------------------------------------------------------- #

def test_reachable_includes_roots_and_closes_transitively():
    edges = {"a": ["b"], "b": ["c"], "x": ["y"]}
    assert reachable(edges, ["a"]) == {"a", "b", "c"}
    assert reachable(edges, ["b", "x"]) == {"b", "c", "x", "y"}
    assert reachable(edges, []) == set()


def test_reachable_handles_cycles():
    edges = {"a": ["b"], "b": ["a", "c"]}
    assert reachable(edges, ["a"]) == {"a", "b", "c"}


def test_propagate_saturates_facts_over_cycles():
    edges = {"a": ["b"], "b": ["c", "a"]}
    facts = propagate(edges, {"a": {"seed"}})
    assert facts["a"] == frozenset({"seed"})
    assert facts["b"] == frozenset({"seed"})
    assert facts["c"] == frozenset({"seed"})


def test_propagate_merges_facts_from_multiple_roots():
    edges = {"a": ["c"], "b": ["c"]}
    facts = propagate(edges, {"a": {"env"}, "b": {"seed"}})
    assert facts["c"] == frozenset({"env", "seed"})


def test_invert_edges():
    assert invert_edges({"a": ["b", "c"], "c": ["b"]}) == {
        "b": ["a", "c"], "c": ["a"],
    }


def test_expr_names_walks_whole_expression():
    expr = ast.parse("f(x) + obj.attr[key]", mode="eval").body
    assert expr_names(expr) == {"f", "x", "obj", "key"}


@pytest.mark.parametrize("body,derived,ambient", [
    ("rng_seed = seed + 1", {"rng_seed"}, set()),
    ("a = 1\nb = a + seed\nc = b * 2", {"b", "c"}, {"a"}),
    ("(walrus := seed)", {"walrus"}, set()),
    ("fixed = 1234", set(), {"fixed"}),
])
def test_param_derived_names_closure(body, derived, ambient):
    src = "def fn(seed):\n" + textwrap.indent(body, "    ") + "\n"
    fn = ast.parse(src).body[0]
    got = param_derived_names(fn)
    assert "seed" in got
    assert derived <= got
    assert not (ambient & got)


# --------------------------------------------------------------------- #
# entry-point detection
# --------------------------------------------------------------------- #

def test_flow_entry_pragma_and_scenario_decorator(tmp_path):
    from repro.analysis.lint.flow_rules import entry_summary

    index = index_of(tmp_path, {
        "mod.py": (
            "from repro.experiments.registry import scenario\n"
            "@scenario('demo')\n"
            "def trial(ctx):\n"
            "    return 1\n"
            "def pump():  # repro: flow-entry[coordinator]\n"
            "    return 2\n"
            "def grind():  # repro: flow-entry[worker]\n"
            "    return 3\n"
            "def bystander():\n"
            "    return 4\n"
        ),
    })
    summary = entry_summary(index)
    assert summary["scenario_entries"] == 1
    assert summary["coordinator_entries"] == 1
    # @scenario trial bodies execute inside chunk workers too.
    assert summary["worker_entries"] == 2


def test_file_context_qualname_resolves_aliases(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "x = np.random.default_rng(0)\n"
    )
    ctx = FileContext(target, "mod.py", target.read_text())
    call = next(
        node for node in ast.walk(ctx.tree) if isinstance(node, ast.Call)
    )
    assert ctx.qualname(call.func) == "numpy.random.default_rng"
