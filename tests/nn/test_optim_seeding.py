"""SGD weight-decay exemptions and loud unseeded-RNG fallbacks."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Linear,
    SGD,
    Tensor,
    UnseededRngWarning,
    default_decay_filter,
)
from repro.nn import functional as F
from repro.nn.tensor import Parameter


def _param(shape):
    p = Parameter(np.ones(shape, dtype=np.float32))
    p.grad = np.zeros(shape, dtype=np.float32)
    return p


class TestWeightDecayExemption:
    def test_default_filter_decays_matrices_only(self):
        weight = _param((4, 4))
        bias = _param((4,))
        assert default_decay_filter(weight)
        assert not default_decay_filter(bias)

    def test_step_skips_bias_and_batchnorm_parameters(self):
        weight, bias = _param((4, 4)), _param((4,))
        optimizer = SGD([weight, bias], lr=0.1, momentum=0.0,
                        weight_decay=0.1)
        optimizer.step()
        # Zero grad + decay: only the matrix shrinks.
        assert np.all(weight.data < 1.0)
        assert np.array_equal(bias.data, np.ones(4, dtype=np.float32))

    def test_batchnorm_gamma_beta_are_exempt(self):
        bn = BatchNorm2d(3)
        for p in (bn.gamma, bn.beta):
            p.grad = np.zeros_like(p.data)
        gamma_before = bn.gamma.data.copy()
        SGD([bn.gamma, bn.beta], lr=0.1, momentum=0.0,
            weight_decay=0.5).step()
        assert np.array_equal(bn.gamma.data, gamma_before)

    def test_custom_filter_recovers_legacy_behaviour(self):
        bias = _param((4,))
        SGD([bias], lr=0.1, momentum=0.0, weight_decay=0.1,
            decay_filter=lambda p: True).step()
        assert np.all(bias.data < 1.0)

    def test_momentum_update_unchanged_for_weights(self):
        weight = _param((2, 2))
        weight.grad = np.full((2, 2), 0.5, dtype=np.float32)
        SGD([weight], lr=0.1, momentum=0.0, weight_decay=0.0).step()
        assert np.allclose(weight.data, 1.0 - 0.1 * 0.5)


class TestUnseededRngWarnings:
    def test_conv_and_linear_warn_without_rng(self):
        with pytest.warns(UnseededRngWarning):
            Conv2d(3, 4, 3)
        with pytest.warns(UnseededRngWarning):
            Linear(4, 2)

    def test_seeded_layers_do_not_warn(self, recwarn):
        rng = np.random.default_rng(0)
        Conv2d(3, 4, 3, rng=rng)
        Linear(4, 2, rng=rng)
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, UnseededRngWarning)
        ]

    def test_functional_dropout_warns_only_when_randomness_is_used(
        self, recwarn
    ):
        x = Tensor(np.ones((2, 8), dtype=np.float32))
        F.dropout(x, 0.5, training=False)  # identity: no rng needed
        F.dropout(x, 0.0, training=True)
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, UnseededRngWarning)
        ]
        with pytest.warns(UnseededRngWarning):
            F.dropout(x, 0.5, training=True)

    def test_dropout_module_eval_never_warns(self, recwarn):
        layer = Dropout(0.5)
        layer.eval()
        layer(Tensor(np.ones((2, 8), dtype=np.float32)))
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, UnseededRngWarning)
        ]

    def test_dropout_module_training_warns_once_then_reuses_rng(self):
        layer = Dropout(0.5)
        layer.train()
        x = Tensor(np.ones((2, 8), dtype=np.float32))
        with pytest.warns(UnseededRngWarning):
            layer(x)
        assert layer.rng is not None  # fallback adopted; no second warning

    def test_seeded_dropout_is_reproducible(self):
        x = Tensor(np.ones((4, 16), dtype=np.float32))
        masks = []
        for _ in range(2):
            layer = Dropout(0.5, rng=np.random.default_rng(3))
            layer.train()
            masks.append(layer(x).data.copy())
        assert np.array_equal(masks[0], masks[1])

    def test_env_opt_in_silences_warning(self, monkeypatch, recwarn):
        monkeypatch.setenv("REPRO_ALLOW_UNSEEDED_RNG", "1")
        Conv2d(3, 4, 3)
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, UnseededRngWarning)
        ]
