"""Micro-batched ``loss_and_grads`` parity against the single pass.

The micro-batched path slices the batch, backpropagates each slice with
full-batch ``1/N`` gradient scaling, and accumulates parameter grads.
The accumulation wiring is exact (pinned byte-for-byte against a
grouping-exact reference); against the *single pass* the loss and grads
match to float32 rounding only, because BLAS may pick different gemm
kernels for different batch shapes and slice partial sums are grouped
per slice.
"""

import numpy as np
import pytest

from repro.attacks.bfa import BfaConfig, BitFlipAttack
from repro.attacks.tbfa import TbfaConfig, TargetedBitFlipAttack
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.nn.train import loss_and_grads


def _grads(model):
    return [
        (name, param.grad.copy())
        for name, param in sorted(model.named_parameters())
    ]


class TestLossAndGradsMicrobatch:
    def test_loss_matches_single_pass(self, fresh_model, tiny_dataset):
        x = tiny_dataset.x_test[:64]
        y = tiny_dataset.y_test[:64]
        full = loss_and_grads(fresh_model, x, y)
        micro = loss_and_grads(fresh_model, x, y, batch_size=16)
        assert micro == pytest.approx(full, rel=1e-5)

    def test_grads_match_single_pass_tightly(self, fresh_model,
                                             tiny_dataset):
        x = tiny_dataset.x_test[:64]
        y = tiny_dataset.y_test[:64]
        loss_and_grads(fresh_model, x, y)
        full = _grads(fresh_model)
        loss_and_grads(fresh_model, x, y, batch_size=16)
        micro = _grads(fresh_model)
        for (name, grad_full), (_, grad_micro) in zip(full, micro):
            scale = max(float(np.abs(grad_full).max()), 1e-12)
            assert np.allclose(
                grad_micro, grad_full, rtol=0.0, atol=1e-4 * scale
            ), name

    def test_grads_exactly_match_slice_reference(self, fresh_model,
                                                 tiny_dataset):
        """The accumulation wiring is exact: grads equal a hand-rolled
        per-slice accumulation with the same slicing, byte for byte."""
        x = tiny_dataset.x_test[:48]
        y = tiny_dataset.y_test[:48]
        batch = 16
        loss_and_grads(fresh_model, x, y, batch_size=batch)
        micro = _grads(fresh_model)

        fresh_model.eval()
        fresh_model.zero_grad()
        for start in range(0, x.shape[0], batch):
            logits = fresh_model(Tensor(x[start:start + batch]))
            loss, _ = F.cross_entropy_slice(
                logits, y[start:start + batch], x.shape[0]
            )
            loss.backward()
        reference = _grads(fresh_model)
        for (name, grad_micro), (_, grad_ref) in zip(micro, reference):
            assert grad_micro.tobytes() == grad_ref.tobytes(), name

    def test_oversized_batch_size_is_single_pass(self, fresh_model,
                                                 tiny_dataset):
        x = tiny_dataset.x_test[:32]
        y = tiny_dataset.y_test[:32]
        full = loss_and_grads(fresh_model, x, y)
        grads_full = [g.tobytes() for _, g in _grads(fresh_model)]
        again = loss_and_grads(fresh_model, x, y, batch_size=500)
        grads_again = [g.tobytes() for _, g in _grads(fresh_model)]
        assert again == full
        assert grads_again == grads_full

    def test_batch_size_validation(self, fresh_model, tiny_dataset):
        with pytest.raises(ValueError, match="batch_size"):
            loss_and_grads(
                fresh_model, tiny_dataset.x_test[:8],
                tiny_dataset.y_test[:8], batch_size=0,
            )


class TestAttackWiring:
    def test_bfa_config_validates_grad_batch_size(self):
        with pytest.raises(ValueError, match="grad_batch_size"):
            BfaConfig(grad_batch_size=0)

    def test_bfa_runs_with_micro_batched_grads(self, fresh_quantized,
                                               tiny_dataset):
        rng = np.random.default_rng(41)
        x, y = tiny_dataset.attack_batch(48, rng)
        attack = BitFlipAttack(
            fresh_quantized, x, y,
            config=BfaConfig(
                max_iterations=2, exact_eval_top=2, grad_batch_size=16
            ),
        )
        result = attack.run()
        assert result.num_flips >= 1
        assert result.final_accuracy <= result.initial_accuracy + 1e-9

    def test_tbfa_config_validates_grad_batch_size(self):
        with pytest.raises(ValueError, match="grad_batch_size"):
            TbfaConfig(source_class=0, target_class=1, grad_batch_size=-1)

    def test_tbfa_targeted_loss_micro_matches_full(self, quantized_factory,
                                                   tiny_dataset):
        rng = np.random.default_rng(43)
        x, y = tiny_dataset.attack_batch(64, rng)
        source = int(y[0])
        target = (source + 1) % 10

        def build(batch_size):
            return TargetedBitFlipAttack(
                quantized_factory(), x, y,
                config=TbfaConfig(
                    source_class=source, target_class=target,
                    max_iterations=1, grad_batch_size=batch_size,
                ),
            )

        full = build(None)
        micro = build(8)
        loss_full = full._targeted_loss(build_graph=True)
        loss_micro = micro._targeted_loss(build_graph=True)
        assert loss_micro == pytest.approx(loss_full, rel=1e-5)
        grads_full = _grads(full.qmodel.model)
        grads_micro = _grads(micro.qmodel.model)
        for (name, grad_f), (_, grad_m) in zip(grads_full, grads_micro):
            scale = max(float(np.abs(grad_f).max()), 1e-12)
            assert np.allclose(
                grad_m, grad_f, rtol=0.0, atol=1e-4 * scale
            ), name
        # The no-graph (exact-eval) variant agrees too.
        assert micro._targeted_loss(build_graph=False) == pytest.approx(
            full._targeted_loss(build_graph=False), rel=1e-5
        )
