"""Tests for synthetic datasets, the optimizer, and end-to-end training."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Linear,
    Sequential,
    Tensor,
    cifar10_like,
    evaluate,
    fit,
    imagenet_like,
    loss_and_grads,
    make_resnet20,
    predict_logits,
    synthetic_classification,
)
from repro.nn import functional as F


class TestSyntheticData:
    def test_shapes_and_dtypes(self):
        data = cifar10_like(n_train=64, n_test=32, image_hw=8, seed=0)
        assert data.x_train.shape == (64, 3, 8, 8)
        assert data.x_train.dtype == np.float32
        assert data.y_train.dtype == np.int64
        assert data.num_classes == 10
        assert data.random_guess_accuracy == pytest.approx(0.1)

    def test_deterministic(self):
        a = cifar10_like(n_train=32, n_test=16, image_hw=8, seed=5)
        b = cifar10_like(n_train=32, n_test=16, image_hw=8, seed=5)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_different_seed_differs(self):
        a = cifar10_like(n_train=32, n_test=16, image_hw=8, seed=1)
        b = cifar10_like(n_train=32, n_test=16, image_hw=8, seed=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_normalised(self):
        data = cifar10_like(n_train=256, n_test=32, image_hw=8, seed=0)
        assert abs(data.x_train.mean()) < 0.05
        assert data.x_train.std() == pytest.approx(1.0, abs=0.05)

    def test_imagenet_like_classes(self):
        data = imagenet_like(num_classes=20, n_train=64, n_test=32,
                             image_hw=8, seed=0)
        assert data.num_classes == 20
        assert set(np.unique(data.y_train)).issubset(set(range(20)))

    def test_attack_batch_comes_from_test(self):
        data = cifar10_like(n_train=32, n_test=16, image_hw=8, seed=0)
        rng = np.random.default_rng(0)
        xb, yb = data.attack_batch(8, rng)
        assert xb.shape[0] == 8
        # every sampled row exists in the test set
        for row, label in zip(xb, yb):
            matches = np.where((data.x_test == row).all(axis=(1, 2, 3)))[0]
            assert len(matches) >= 1
            assert label in data.y_test[matches]

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            synthetic_classification("x", 1, 8, 8)


class TestSGD:
    def test_minimises_quadratic(self):
        rng = np.random.default_rng(0)
        w = Linear(4, 1, rng=rng)
        opt = SGD(w.parameters(), lr=0.1, momentum=0.5)
        x = np.eye(4, dtype=np.float32)
        loss = None
        for _ in range(200):
            opt.zero_grad()
            out = w(Tensor(x))
            loss = (out * out).sum()
            loss.backward()
            opt.step()
        assert loss.item() < 1e-8

    def test_weight_decay_shrinks(self):
        rng = np.random.default_rng(1)
        layer = Linear(3, 3, rng=rng)
        opt = SGD(layer.parameters(), lr=0.1, momentum=0.0, weight_decay=1.0)
        before = np.abs(layer.weight.data).sum()
        # Gradient-free steps: only decay acts.
        for p in layer.parameters():
            p.grad = np.zeros_like(p.data)
        for _ in range(10):
            opt.step()
        after = np.abs(layer.weight.data).sum()
        assert after < before

    def test_validates_args(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            SGD(Linear(2, 2, rng=rng).parameters(), lr=0.0)


class TestTraining:
    def test_resnet20_learns_synthetic_data(self):
        data = cifar10_like(n_train=512, n_test=256, image_hw=8, seed=0)
        model = make_resnet20(num_classes=10, width_scale=0.5, seed=0)
        history = fit(model, data, epochs=6, batch_size=64, lr=0.08, seed=0)
        assert history["test_accuracy"][-1] > 0.7
        assert history["loss"][-1] < history["loss"][0]

    def test_evaluate_range(self):
        data = cifar10_like(n_train=32, n_test=32, image_hw=8, seed=0)
        model = make_resnet20(num_classes=10, width_scale=0.25, seed=0)
        acc = evaluate(model, data.x_test, data.y_test)
        assert 0.0 <= acc <= 1.0

    def test_predict_logits_batching_consistent(self):
        data = cifar10_like(n_train=32, n_test=40, image_hw=8, seed=0)
        model = make_resnet20(num_classes=10, width_scale=0.25, seed=0)
        full = predict_logits(model, data.x_test, batch_size=64)
        chunked = predict_logits(model, data.x_test, batch_size=7)
        np.testing.assert_allclose(full, chunked, rtol=1e-5, atol=1e-5)

    def test_loss_and_grads_populates_gradients(self):
        data = cifar10_like(n_train=32, n_test=32, image_hw=8, seed=0)
        model = make_resnet20(num_classes=10, width_scale=0.25, seed=0)
        loss = loss_and_grads(model, data.x_test[:8], data.y_test[:8])
        assert loss > 0
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)
        # eval mode must be left on and BN stats untouched by the pass
        assert not model.training
