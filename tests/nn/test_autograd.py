"""Gradient checks for the autograd engine (numerical vs analytic)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        plus = fn()
        flat[i] = old - eps
        minus = fn()
        flat[i] = old
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(make_output, *tensors, atol=1e-5, rtol=1e-4):
    """Compare autograd gradients to numerical ones for each input tensor."""
    for t in tensors:
        t.zero_grad()
    out = make_output()
    out.backward()
    for t in tensors:
        analytic = t.grad.copy()

        def scalar():
            with no_grad():
                return float(make_output().data)

        numeric = numerical_grad(scalar, t.data)
        np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


def t64(array, requires_grad=True):
    return Tensor(np.asarray(array, dtype=np.float64), requires_grad=requires_grad)


class TestElementwiseOps:
    def test_add_mul(self):
        rng = np.random.default_rng(0)
        a = t64(rng.normal(size=(3, 4)))
        b = t64(rng.normal(size=(3, 4)))
        check_gradient(lambda: ((a + b) * a).sum(), a, b)

    def test_broadcast_add(self):
        rng = np.random.default_rng(1)
        a = t64(rng.normal(size=(3, 4)))
        b = t64(rng.normal(size=(4,)))
        check_gradient(lambda: (a + b).sum(), a, b)

    def test_broadcast_mul_keepdims(self):
        rng = np.random.default_rng(2)
        a = t64(rng.normal(size=(2, 3, 4)))
        b = t64(rng.normal(size=(1, 3, 1)))
        check_gradient(lambda: (a * b).sum(), a, b)

    def test_div_pow(self):
        rng = np.random.default_rng(3)
        a = t64(rng.uniform(0.5, 2.0, size=(5,)))
        b = t64(rng.uniform(0.5, 2.0, size=(5,)))
        check_gradient(lambda: (a / b).sum(), a, b)
        check_gradient(lambda: (a ** 3.0).sum(), a)

    def test_relu_away_from_kink(self):
        a = t64([[-1.0, -0.5, 0.5, 2.0]])
        check_gradient(lambda: (a.relu() * 3.0).sum(), a)

    def test_exp_log_sqrt_tanh(self):
        rng = np.random.default_rng(4)
        a = t64(rng.uniform(0.5, 2.0, size=(6,)))
        check_gradient(lambda: a.exp().sum(), a)
        check_gradient(lambda: a.log().sum(), a)
        check_gradient(lambda: a.sqrt().sum(), a)
        check_gradient(lambda: a.tanh().sum(), a)

    def test_clip(self):
        a = t64([-2.0, -0.5, 0.5, 2.0])
        check_gradient(lambda: a.clip(-1.0, 1.0).sum(), a)

    def test_neg_sub(self):
        rng = np.random.default_rng(5)
        a = t64(rng.normal(size=(4,)))
        b = t64(rng.normal(size=(4,)))
        check_gradient(lambda: (a - b).sum(), a, b)
        check_gradient(lambda: (-a * b).sum(), a, b)


class TestMatmulShapes:
    def test_matmul_2d(self):
        rng = np.random.default_rng(6)
        a = t64(rng.normal(size=(3, 4)))
        b = t64(rng.normal(size=(4, 5)))
        check_gradient(lambda: (a @ b).sum(), a, b)

    def test_matmul_broadcast_batch(self):
        rng = np.random.default_rng(7)
        a = t64(rng.normal(size=(2, 3)))        # broadcast over batch
        b = t64(rng.normal(size=(4, 3, 5)))
        check_gradient(lambda: (a @ b).sum(), a, b)

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError):
            _ = t64([1.0, 2.0]) @ t64([[1.0], [2.0]])

    def test_sum_axis(self):
        rng = np.random.default_rng(8)
        a = t64(rng.normal(size=(3, 4, 2)))
        check_gradient(lambda: (a.sum(axis=1) ** 2.0).sum(), a)

    def test_mean_axes(self):
        rng = np.random.default_rng(9)
        a = t64(rng.normal(size=(3, 4, 2)))
        check_gradient(lambda: (a.mean(axis=(0, 2)) ** 2.0).sum(), a)

    def test_reshape_transpose(self):
        rng = np.random.default_rng(10)
        a = t64(rng.normal(size=(3, 4)))
        check_gradient(lambda: (a.reshape(2, 6).T ** 2.0).sum(), a)

    def test_getitem(self):
        rng = np.random.default_rng(11)
        a = t64(rng.normal(size=(5, 3)))
        check_gradient(lambda: (a[1:4] * 2.0).sum(), a)


class TestBackwardSemantics:
    def test_grad_accumulates_across_uses(self):
        a = t64([2.0])
        out = a * a + a  # d/da = 2a + 1 = 5
        out.backward()
        assert a.grad[0] == pytest.approx(5.0)

    def test_backward_requires_scalar(self):
        a = t64([[1.0, 2.0]])
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_nograd_tensor_raises(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_no_grad_blocks_graph(self):
        a = t64([1.0])
        with no_grad():
            out = a * 3.0
        assert not out.requires_grad

    def test_diamond_graph(self):
        # a -> b, c -> d uses both paths; grads must sum correctly.
        a = t64([3.0])
        b = a * 2.0
        c = a * 5.0
        d = (b * c).sum()  # d = 10 a^2, dd/da = 20 a = 60
        d.backward()
        assert a.grad[0] == pytest.approx(60.0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-3, 3), min_size=2, max_size=6))
    def test_sum_grad_is_ones(self, values):
        a = t64(values)
        a.sum().backward()
        assert np.allclose(a.grad, np.ones(len(values)))


class TestNNFunctional:
    def test_conv2d_gradcheck(self):
        rng = np.random.default_rng(12)
        x = t64(rng.normal(size=(2, 3, 5, 5)))
        w = t64(rng.normal(size=(4, 3, 3, 3)) * 0.5)
        b = t64(rng.normal(size=(4,)))
        check_gradient(
            lambda: (F.conv2d(x, w, b, stride=1, padding=1) ** 2.0).sum(),
            x, w, b, atol=1e-4, rtol=1e-3,
        )

    def test_conv2d_stride2_gradcheck(self):
        rng = np.random.default_rng(13)
        x = t64(rng.normal(size=(2, 2, 6, 6)))
        w = t64(rng.normal(size=(3, 2, 3, 3)) * 0.5)
        check_gradient(
            lambda: (F.conv2d(x, w, None, stride=2, padding=1) ** 2.0).sum(),
            x, w, atol=1e-4, rtol=1e-3,
        )

    def test_conv2d_matches_direct_computation(self):
        rng = np.random.default_rng(14)
        x = rng.normal(size=(1, 1, 4, 4))
        w = rng.normal(size=(1, 1, 2, 2))
        out = F.conv2d(Tensor(x), Tensor(w), None, stride=1, padding=0)
        expected = np.zeros((1, 1, 3, 3))
        for i in range(3):
            for j in range(3):
                expected[0, 0, i, j] = (x[0, 0, i:i + 2, j:j + 2] * w[0, 0]).sum()
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_conv2d_channel_mismatch(self):
        with pytest.raises(ValueError):
            F.conv2d(
                Tensor(np.zeros((1, 3, 4, 4))),
                Tensor(np.zeros((2, 4, 3, 3))),
            )

    def test_max_pool_gradcheck(self):
        rng = np.random.default_rng(15)
        # Distinct values avoid argmax ties that break numerical checking.
        x = t64(rng.permutation(32).reshape(1, 2, 4, 4) * 0.37)
        check_gradient(lambda: (F.max_pool2d(x, 2) ** 2.0).sum(), x)

    def test_avg_pool_gradcheck(self):
        rng = np.random.default_rng(16)
        x = t64(rng.normal(size=(2, 2, 4, 4)))
        check_gradient(lambda: (F.avg_pool2d(x, 2) ** 2.0).sum(), x)

    def test_pool_rejects_non_tiling_kernel(self):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)

    def test_log_softmax_gradcheck(self):
        rng = np.random.default_rng(17)
        x = t64(rng.normal(size=(3, 5)))
        check_gradient(lambda: (F.log_softmax(x) * 0.3).sum(), x)

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(18)
        x = Tensor(rng.normal(size=(4, 7)))
        s = F.softmax(x)
        np.testing.assert_allclose(s.data.sum(axis=1), np.ones(4), rtol=1e-5)

    def test_cross_entropy_gradcheck(self):
        rng = np.random.default_rng(19)
        x = t64(rng.normal(size=(4, 6)))
        targets = np.array([0, 2, 5, 1])
        check_gradient(lambda: F.cross_entropy(x, targets), x)

    def test_cross_entropy_matches_nll(self):
        rng = np.random.default_rng(20)
        x = Tensor(rng.normal(size=(8, 5)))
        targets = rng.integers(0, 5, size=8)
        loss = F.cross_entropy(x, targets)
        log_probs = F.log_softmax(x).data
        expected = -log_probs[np.arange(8), targets].mean()
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_cross_entropy_validates_targets(self):
        x = Tensor(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            F.cross_entropy(x, np.array([0, 3]))
        with pytest.raises(ValueError):
            F.cross_entropy(x, np.array([[0], [1]]))

    def test_batch_norm_train_normalises(self):
        rng = np.random.default_rng(21)
        from repro.nn.layers import BatchNorm2d
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(2.0, 3.0, size=(8, 3, 4, 4)).astype(np.float32))
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, np.zeros(3), atol=1e-4)
        np.testing.assert_allclose(std, np.ones(3), atol=1e-2)

    def test_batch_norm_eval_uses_running_stats(self):
        from repro.nn.layers import BatchNorm2d
        bn = BatchNorm2d(2)
        rng = np.random.default_rng(22)
        x = Tensor(rng.normal(1.0, 2.0, size=(16, 2, 3, 3)).astype(np.float32))
        for _ in range(30):
            bn(x)  # accumulate running stats
        bn.eval()
        out_a = bn(x).data
        out_b = bn(Tensor(x.data.copy())).data
        np.testing.assert_allclose(out_a, out_b)
        assert abs(out_a.mean()) < 0.5

    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_train_scales(self):
        rng = np.random.default_rng(23)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)
        with pytest.raises(ValueError):
            F.dropout(x, 1.0, training=True)


class TestIm2Col:
    def test_roundtrip_adjoint(self):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        rng = np.random.default_rng(24)
        x = rng.normal(size=(2, 3, 6, 6))
        cols = F.im2col(x, 3, 3, stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * F.col2im(y, x.shape, 3, 3, stride=1, padding=1)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_bad_kernel_rejected(self):
        with pytest.raises(ValueError):
            F.im2col(np.zeros((1, 1, 3, 3)), 5, 5, stride=1, padding=0)
