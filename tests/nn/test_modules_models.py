"""Tests for the Module system, layers, and the model zoo."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Tensor,
    make_resnet18,
    make_resnet20,
    make_resnet34,
    make_vgg11,
)


class TestModuleRegistry:
    def make_net(self):
        rng = np.random.default_rng(0)
        return Sequential(
            Conv2d(3, 4, 3, padding=1, rng=rng),
            BatchNorm2d(4),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(4 * 2 * 2, 5, rng=rng),
        )

    def test_named_parameters_unique(self):
        net = self.make_net()
        names = [name for name, _ in net.named_parameters()]
        assert len(names) == len(set(names))
        assert any("weight" in n for n in names)

    def test_parameter_count(self):
        net = self.make_net()
        expected = (4 * 3 * 9 + 4) + (4 + 4) + (16 * 5 + 5)
        assert net.parameter_count() == expected

    def test_train_eval_propagates(self):
        net = self.make_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = self.make_net()
        x = Tensor(np.random.default_rng(1).normal(size=(2, 3, 4, 4)))
        out = net(x).sum()
        out.backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net_a = self.make_net()
        net_b = self.make_net()
        # Perturb net_b so the load is observable.
        for p in net_b.parameters():
            p.data += 1.0
        state = net_a.state_dict()
        net_b.load_state_dict(state)
        for (na, pa), (nb, pb) in zip(
            net_a.named_parameters(), net_b.named_parameters()
        ):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_includes_bn_buffers(self):
        net = self.make_net()
        state = net.state_dict()
        assert any("running_mean" in k for k in state)

    def test_load_state_dict_missing_key(self):
        net = self.make_net()
        state = net.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        net = self.make_net()
        state = net.state_dict()
        key = next(k for k in state if k.endswith("weight"))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestModels:
    def test_vgg11_forward_shape(self):
        model = make_vgg11(num_classes=10, input_size=16, width_scale=0.125,
                           seed=0)
        x = Tensor(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert model(x).shape == (2, 10)

    def test_vgg11_has_8_convs_3_linears(self):
        model = make_vgg11(num_classes=10, input_size=32, width_scale=0.125)
        convs = [m for m in model.modules() if isinstance(m, Conv2d)]
        linears = [m for m in model.modules() if isinstance(m, Linear)]
        assert len(convs) == 8
        assert len(linears) == 3

    def test_resnet20_forward_shape(self):
        model = make_resnet20(num_classes=10, width_scale=0.5, seed=1)
        x = Tensor(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert model(x).shape == (2, 10)

    def test_resnet20_depth(self):
        model = make_resnet20(width_scale=0.5)
        convs = [m for m in model.modules() if isinstance(m, Conv2d)]
        # 1 stem + 18 block convs + 2 downsample projections = 21
        assert len(convs) == 21

    def test_resnet18_and_34_forward(self):
        for factory, blocks in ((make_resnet18, 8), (make_resnet34, 16)):
            model = factory(num_classes=7, width_scale=0.0625, seed=2)
            x = Tensor(np.zeros((1, 3, 16, 16), dtype=np.float32))
            assert model(x).shape == (1, 7)

    def test_resnet34_deeper_than_resnet18(self):
        r18 = make_resnet18(width_scale=0.0625)
        r34 = make_resnet34(width_scale=0.0625)
        assert r34.parameter_count() > r18.parameter_count()

    def test_deterministic_init(self):
        a = make_resnet20(width_scale=0.25, seed=7)
        b = make_resnet20(width_scale=0.25, seed=7)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seeds_differ(self):
        a = make_resnet20(width_scale=0.25, seed=1)
        b = make_resnet20(width_scale=0.25, seed=2)
        pa = next(iter(a.parameters())).data
        pb = next(iter(b.parameters())).data
        assert not np.array_equal(pa, pb)

    def test_vgg_small_input_skips_late_pools(self):
        model = make_vgg11(num_classes=10, input_size=8, width_scale=0.125)
        x = Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32))
        assert model(x).shape == (1, 10)

    def test_vgg_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            make_vgg11(input_size=2)
