"""Parity and regression tests for the vectorized ``nn.functional`` path.

The vectorized kernels (``REPRO_NN_VECTORIZED=1``, the default) must be
byte-identical to the legacy per-``(kh, kw)``-loop kernels — same forward
values, same loss, same gradients — because they only change data
movement and graph fusion, never floating-point evaluation order.
"""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad
from repro.nn.train import loss_and_grads


@pytest.fixture
def legacy_kernels(monkeypatch):
    monkeypatch.setenv("REPRO_NN_VECTORIZED", "0")


def _vec(monkeypatch, value: str):
    monkeypatch.setenv("REPRO_NN_VECTORIZED", value)


def _small_convnet(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(3, 8, 3, padding=1, rng=rng),
        BatchNorm2d(8),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 12, 3, stride=2, padding=1, rng=rng),
        ReLU(),
        Flatten(),
        Linear(12 * 2 * 2, 10, rng=rng),
    )


def _grads(model):
    return [
        (name, param.grad.copy())
        for name, param in sorted(model.named_parameters())
    ]


class TestForwardBackwardParity:
    def test_loss_and_grads_byte_identical(self, monkeypatch):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((16, 3, 8, 8)).astype(np.float32)
        y = rng.integers(0, 10, size=16)

        results = {}
        for mode in ("0", "1"):
            _vec(monkeypatch, mode)
            model = _small_convnet()
            model.eval()
            loss = loss_and_grads(model, x, y)
            results[mode] = (loss, _grads(model))
        loss_legacy, grads_legacy = results["0"]
        loss_vec, grads_vec = results["1"]
        assert loss_vec == loss_legacy
        for (name_l, grad_l), (name_v, grad_v) in zip(
            grads_legacy, grads_vec
        ):
            assert name_l == name_v
            assert grad_l.tobytes() == grad_v.tobytes(), name_l

    def test_training_forward_byte_identical(self, monkeypatch):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((8, 3, 8, 8)).astype(np.float32)
        outs = {}
        for mode in ("0", "1"):
            _vec(monkeypatch, mode)
            model = _small_convnet()
            model.train()
            outs[mode] = model(Tensor(x)).data.tobytes()
        assert outs["0"] == outs["1"]

    def test_inference_forward_byte_identical(self, monkeypatch):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((8, 3, 8, 8)).astype(np.float32)
        outs = {}
        for mode in ("0", "1"):
            _vec(monkeypatch, mode)
            model = _small_convnet()
            model.eval()
            with no_grad():
                outs[mode] = model(Tensor(x)).data.tobytes()
        assert outs["0"] == outs["1"]

    def test_repeated_passes_stable_with_buffer_pool(self, monkeypatch):
        """Pooled scratch buffers must not leak state across passes."""
        _vec(monkeypatch, "1")
        rng = np.random.default_rng(9)
        x = rng.standard_normal((8, 3, 8, 8)).astype(np.float32)
        y = rng.integers(0, 10, size=8)
        model = _small_convnet()
        first = loss_and_grads(model, x, y)
        first_grads = [g.tobytes() for _, g in _grads(model)]
        for _ in range(3):
            again = loss_and_grads(model, x, y)
            assert again == first
            assert [g.tobytes() for _, g in _grads(model)] == first_grads

    def test_interleaved_forwards_before_backward(self, monkeypatch):
        """Two same-shape graphs built before either backward must not
        share column buffers (the tbfa targeted loss does exactly this)."""
        rng = np.random.default_rng(11)
        xa = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
        xb = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
        ya = rng.integers(0, 10, size=4)
        yb = rng.integers(0, 10, size=4)

        results = {}
        for mode in ("0", "1"):
            _vec(monkeypatch, mode)
            model = _small_convnet()
            model.eval()
            model.zero_grad()
            loss = F.cross_entropy(model(Tensor(xa)), ya)
            keep = F.cross_entropy(model(Tensor(xb)), yb)
            (loss + keep * 0.5).backward()
            results[mode] = [g.tobytes() for _, g in _grads(model)]
        assert results["0"] == results["1"]


class TestIm2colCol2im:
    @pytest.mark.parametrize("stride,padding,kh,kw", [
        (1, 0, 3, 3),
        (1, 1, 3, 3),
        (2, 1, 3, 3),
        (3, 2, 5, 5),
        (2, 0, 1, 1),
        (1, 2, 2, 4),
    ])
    def test_vectorized_matches_legacy(self, monkeypatch, stride, padding,
                                       kh, kw):
        rng = np.random.default_rng(13)
        x = rng.standard_normal((3, 4, 11, 13)).astype(np.float32)
        oh = (11 + 2 * padding - kh) // stride + 1
        ow = (13 + 2 * padding - kw) // stride + 1
        if oh <= 0 or ow <= 0:
            pytest.skip("geometry does not fit")
        _vec(monkeypatch, "1")
        cols_vec = F.im2col(x, kh, kw, stride, padding)
        back_vec = F.col2im(cols_vec, x.shape, kh, kw, stride, padding)
        _vec(monkeypatch, "0")
        cols_legacy = F.im2col(x, kh, kw, stride, padding)
        back_legacy = F.col2im(cols_legacy, x.shape, kh, kw, stride, padding)
        assert cols_vec.tobytes() == cols_legacy.tobytes()
        assert back_vec.tobytes() == back_legacy.tobytes()

    @pytest.mark.parametrize("stride,padding,kh,kw", [
        (1, 1, 3, 3),
        (2, 1, 3, 3),
        (3, 2, 5, 3),
        (2, 0, 2, 2),
    ])
    def test_adjointness(self, stride, padding, kh, kw):
        """<u, im2col(x)> == <col2im(u), x>: col2im is the exact adjoint,
        checked on odd stride/padding combinations (float64)."""
        rng = np.random.default_rng(17)
        x = rng.standard_normal((2, 3, 9, 7))
        oh = (9 + 2 * padding - kh) // stride + 1
        ow = (7 + 2 * padding - kw) // stride + 1
        if oh <= 0 or ow <= 0:
            pytest.skip("geometry does not fit")
        cols = F.im2col(x, kh, kw, stride, padding)
        u = rng.standard_normal(cols.shape)
        folded = F.col2im(u, x.shape, kh, kw, stride, padding)
        lhs = float((u * cols).sum())
        rhs = float((folded * x).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestMaxPoolTies:
    @pytest.mark.parametrize("mode", ["0", "1"])
    def test_gradient_goes_to_first_maximum(self, monkeypatch, mode):
        """Under ties, the gradient flows to exactly the first maximum in
        each window (row-major within the window)."""
        _vec(monkeypatch, mode)
        x = Tensor(np.zeros((1, 1, 4, 4), dtype=np.float64),
                   requires_grad=True)
        # Window (0,0): all equal -> first element. Window (0,1): tie on
        # the two elements of the second row -> first of those.
        x.data[0, 0, 1, 2] = 5.0
        x.data[0, 0, 1, 3] = 5.0
        out = F.max_pool2d(x, 2)
        out.sum().backward()
        grad = x.grad[0, 0]
        expected = np.zeros((4, 4))
        expected[0, 0] = 1.0          # all-tie window: first element
        expected[1, 2] = 1.0          # row tie: first maximum
        expected[2, 0] = 1.0
        expected[2, 2] = 1.0
        assert np.array_equal(grad, expected)

    def test_backward_identical_between_paths(self, monkeypatch):
        rng = np.random.default_rng(23)
        data = rng.integers(0, 3, size=(2, 3, 6, 6)).astype(np.float32)
        grads = {}
        for mode in ("0", "1"):
            _vec(monkeypatch, mode)
            x = Tensor(data.copy(), requires_grad=True)
            out = F.max_pool2d(x, 3)
            out.sum().backward()
            grads[mode] = x.grad.copy()
        assert np.array_equal(grads["0"], grads["1"])

    def test_inference_skips_mask_but_values_match(self, monkeypatch):
        _vec(monkeypatch, "1")
        rng = np.random.default_rng(29)
        x = Tensor(rng.standard_normal((2, 3, 4, 4)).astype(np.float32))
        with no_grad():
            fast = F.max_pool2d(x, 2)
        assert fast._parents == ()
        _vec(monkeypatch, "0")
        with no_grad():
            legacy = F.max_pool2d(x, 2)
        assert fast.data.tobytes() == legacy.data.tobytes()


class TestBatchNormEvalCache:
    def _bn_inputs(self, seed=31):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((4, 6, 5, 5)).astype(np.float32))
        bn = BatchNorm2d(6)
        bn.running_mean[:] = rng.standard_normal(6).astype(np.float32)
        bn.running_var[:] = rng.uniform(0.5, 2.0, 6).astype(np.float32)
        bn.eval()
        return x, bn

    def test_fused_matches_legacy_bytes(self, monkeypatch):
        x, bn = self._bn_inputs()
        outs, grads = {}, {}
        for mode in ("0", "1"):
            _vec(monkeypatch, mode)
            bn.zero_grad()
            out = bn(x)
            out.sum().backward()
            outs[mode] = out.data.tobytes()
            grads[mode] = (bn.gamma.grad.tobytes(), bn.beta.grad.tobytes())
        assert outs["0"] == outs["1"]
        assert grads["0"] == grads["1"]

    def test_constants_cached_between_forwards(self, monkeypatch):
        _vec(monkeypatch, "1")
        x, bn = self._bn_inputs()
        with no_grad():
            bn(x)
        inv_std_first = bn._eval_cache.inv_std4
        assert isinstance(inv_std_first, np.ndarray)
        with no_grad():
            bn(x)
        assert bn._eval_cache.inv_std4 is inv_std_first

    def test_cache_invalidated_when_buffers_change(self, monkeypatch):
        _vec(monkeypatch, "1")
        x, bn = self._bn_inputs()
        with no_grad():
            before = bn(x).data.copy()
        stale = bn._eval_cache.inv_std4
        bn.running_var[:] *= 4.0       # in-place update, as training does
        with no_grad():
            after = bn(x).data.copy()
        assert bn._eval_cache.inv_std4 is not stale
        assert not np.allclose(before, after)

    def test_eval_forward_allocates_no_grad_buffers(self, monkeypatch):
        """The fused eval node's only grad-capable parents are the input
        and the affine parameters — no throwaway constant joins the
        graph, and the constants themselves can never hold a grad."""
        _vec(monkeypatch, "1")
        x, bn = self._bn_inputs()
        x.requires_grad = True
        out = bn(x)
        assert set(map(id, out._parents)) == {id(x), id(bn.gamma), id(bn.beta)}
        out.sum().backward()
        for node in out._parents:
            assert node.grad is not None
        assert isinstance(bn._eval_cache.inv_std4, np.ndarray)
        assert isinstance(bn._eval_cache.mean4, np.ndarray)

    def test_no_grad_eval_builds_no_graph(self, monkeypatch):
        _vec(monkeypatch, "1")
        x, bn = self._bn_inputs()
        with no_grad():
            out = bn(x)
        assert out._parents == ()
        assert not out.requires_grad


class TestCrossEntropyEdges:
    def test_empty_batch_raises_value_error(self):
        logits = Tensor(np.zeros((0, 10), dtype=np.float32))
        targets = np.zeros(0, dtype=np.int64)
        with pytest.raises(ValueError, match="non-empty batch"):
            F.cross_entropy(logits, targets)

    def test_empty_batch_raises_in_slice_variant(self):
        logits = Tensor(np.zeros((0, 10), dtype=np.float32))
        with pytest.raises(ValueError, match="non-empty batch"):
            F.cross_entropy_slice(logits, np.zeros(0, dtype=np.int64), 8)

    def test_size_one_batch(self):
        logits = Tensor(
            np.array([[2.0, 0.0, -1.0]], dtype=np.float32),
            requires_grad=True,
        )
        loss = F.cross_entropy(logits, np.array([0]))
        loss.backward()
        assert np.isfinite(loss.item())
        assert logits.grad.shape == (1, 3)

    def test_size_one_batch_through_batch_norm_training(self):
        """A singleton batch with 1x1 spatial extent exercises the
        unbiased-variance ``max(n - 1, 1)`` guard (n == 1)."""
        bn = BatchNorm2d(3)
        bn.train()
        x = Tensor(
            np.arange(3, dtype=np.float32).reshape(1, 3, 1, 1),
            requires_grad=True,
        )
        out = bn(x)
        out.sum().backward()
        assert np.all(np.isfinite(out.data))
        assert np.all(np.isfinite(bn.running_var))
        assert np.all(np.isfinite(x.grad))

    def test_slice_variant_validates_normalizer(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="normalizer"):
            F.cross_entropy_slice(logits, np.array([0, 1]), 0)
