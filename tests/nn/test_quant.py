"""Tests for 8-bit quantization and bit-level weight manipulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    BitLocation,
    Linear,
    QuantizedModel,
    ReLU,
    Sequential,
    Tensor,
)
from repro.utils.bits import bit_flip_delta


def make_quantized(seed=0, sizes=(6, 8, 4)):
    rng = np.random.default_rng(seed)
    model = Sequential(
        Linear(sizes[0], sizes[1], rng=rng),
        ReLU(),
        Linear(sizes[1], sizes[2], rng=rng),
    )
    return model, QuantizedModel(model)


class TestQuantization:
    def test_finds_quantizable_layers(self):
        _, qmodel = make_quantized()
        assert qmodel.num_layers == 2
        assert qmodel.total_weights == 6 * 8 + 8 * 4
        assert qmodel.total_bits == qmodel.total_weights * 8

    def test_scale_maps_max_weight_to_127(self):
        model, qmodel = make_quantized(seed=3)
        for layer in qmodel.layers:
            assert np.abs(layer.weight_int).max() == 127

    def test_dequantized_weights_close_to_float(self):
        rng = np.random.default_rng(4)
        model = Sequential(Linear(20, 20, rng=rng))
        original = model.layers[0].weight.data.copy()
        qmodel = QuantizedModel(model)
        scale = qmodel.layers[0].scale
        np.testing.assert_allclose(
            model.layers[0].weight.data, original, atol=scale / 2 + 1e-7
        )

    def test_quantized_forward_still_works(self):
        model, qmodel = make_quantized()
        x = Tensor(np.ones((2, 6), dtype=np.float32))
        out = qmodel(x)
        assert out.shape == (2, 4)

    def test_rejects_model_without_quantizable_layers(self):
        with pytest.raises(ValueError):
            QuantizedModel(Sequential(ReLU()))


class TestBitFlips:
    def test_flip_changes_float_weight_consistently(self):
        _, qmodel = make_quantized(seed=5)
        loc = BitLocation(layer=0, index=3, bit=7)
        before_int = qmodel.get_int(loc)
        layer = qmodel.layer(0)
        before_float = layer.module.weight.data.flat[3]
        delta = qmodel.flip_bit(loc)
        after_int = qmodel.get_int(loc)
        after_float = layer.module.weight.data.flat[3]
        assert delta == pytest.approx(
            bit_flip_delta(before_int, 7) * layer.scale
        )
        assert after_int - before_int == bit_flip_delta(before_int, 7)
        assert after_float - before_float == pytest.approx(delta, rel=1e-5)

    def test_double_flip_restores(self):
        _, qmodel = make_quantized(seed=6)
        loc = BitLocation(layer=1, index=0, bit=4)
        before = qmodel.get_int(loc)
        qmodel.flip_bit(loc)
        qmodel.flip_bit(loc)
        assert qmodel.get_int(loc) == before

    def test_bit_value_reads_twos_complement(self):
        _, qmodel = make_quantized(seed=7)
        layer = qmodel.layer(0)
        layer.set_int(0, -1)  # 0xFF: all bits set
        for bit in range(8):
            assert qmodel.bit_value(BitLocation(0, 0, bit)) == 1

    def test_set_int_range_check(self):
        _, qmodel = make_quantized()
        with pytest.raises(ValueError):
            qmodel.layer(0).set_int(0, 200)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-127, 127), st.integers(0, 7))
    def test_flip_matches_bit_delta_everywhere(self, value, bit):
        _, qmodel = make_quantized(seed=8)
        layer = qmodel.layer(0)
        layer.set_int(1, value)
        delta = layer.flip_bit(1, bit)
        assert layer.get_int(1) - value == bit_flip_delta(value, bit)
        assert delta == pytest.approx(
            bit_flip_delta(value, bit) * layer.scale, rel=1e-6
        )


class TestPackedBytes:
    def test_roundtrip(self):
        _, qmodel = make_quantized(seed=9)
        layer = qmodel.layer(0)
        packed = layer.packed_bytes()
        assert packed.dtype == np.uint8
        assert packed.size == layer.num_weights
        original = layer.weight_int.copy()
        layer.load_packed_bytes(packed)
        np.testing.assert_array_equal(layer.weight_int, original)

    def test_load_syncs_float_weights(self):
        _, qmodel = make_quantized(seed=10)
        layer = qmodel.layer(0)
        packed = layer.packed_bytes()
        packed[0] ^= 0x80  # flip sign bit of first weight
        layer.load_packed_bytes(packed)
        expected = layer.weight_int.astype(np.float32) * layer.scale
        np.testing.assert_allclose(
            layer.module.weight.data, expected.reshape(layer.shape)
        )

    def test_size_validation(self):
        _, qmodel = make_quantized()
        with pytest.raises(ValueError):
            qmodel.layer(0).load_packed_bytes(np.zeros(3, dtype=np.uint8))


class TestSnapshots:
    def test_snapshot_restore(self):
        _, qmodel = make_quantized(seed=11)
        snap = qmodel.snapshot()
        qmodel.flip_bit(BitLocation(0, 0, 7))
        qmodel.flip_bit(BitLocation(1, 2, 6))
        assert qmodel.hamming_distance_from(snap) == 2
        qmodel.restore(snap)
        assert qmodel.hamming_distance_from(snap) == 0

    def test_restore_validates_shapes(self):
        _, qmodel = make_quantized()
        snap = qmodel.snapshot()
        snap[0] = snap[0][:2]
        with pytest.raises(ValueError):
            qmodel.restore(snap)

    def test_restore_validates_length(self):
        _, qmodel = make_quantized()
        with pytest.raises(ValueError):
            qmodel.restore([])
